//! Differential testing of the staged engine core.
//!
//! The engine's hot loop runs each event batch stage by stage
//! ([`neomem_sim::PipelineMode::Staged`], the default); the
//! event-at-a-time path ([`neomem_sim::PipelineMode::Serial`]) is the
//! reference semantics every `BENCH_*.json` baseline was recorded
//! against. These tests run the [`neomem_bench::diffcheck`] corpus —
//! every workload kind × every dispatch-class policy × {single-tenant,
//! co-run, mid-fault, mid-phase} — under both modes and require the
//! full `Debug` rendering of the reports to match byte for byte.
//!
//! Debug builds are ~an order of magnitude slower than the release CI
//! gate (`neomem-bench differential`), so the per-case budget here is
//! small; the corpus breadth is identical.

use neomem_bench::diffcheck::{self, DiffShape};
use neomem_policies::PolicyKind;
use neomem_workloads::WorkloadKind;

/// Per-case access budget. The mid-fault plan's last edge clears by
/// ~400 µs of virtual time, well inside a run of this size.
const BUDGET: u64 = 6_000;

fn assert_shape(shape: DiffShape) {
    let mut kinds = WorkloadKind::FIG11.to_vec();
    kinds.push(WorkloadKind::Redis);
    for kind in kinds {
        for policy in diffcheck::policies() {
            diffcheck::diff_case(kind, policy, shape, BUDGET).assert_identical();
        }
    }
}

#[test]
fn single_tenant_runs_are_pipeline_invariant() {
    assert_shape(DiffShape::SingleTenant);
}

#[test]
fn corun_runs_are_pipeline_invariant() {
    assert_shape(DiffShape::CoRun);
}

#[test]
fn mid_fault_runs_are_pipeline_invariant() {
    assert_shape(DiffShape::MidFault);
}

#[test]
fn mid_phase_runs_are_pipeline_invariant() {
    assert_shape(DiffShape::MidPhase);
}

/// The workload batch cap the adversarial sweep brackets: chunks never
/// cross a batch boundary, so sizes at and around this cap (and the
/// degenerate 1 and 2) steer the staged pipeline into off-by-one chunk
/// tails — exactly where SWAR tail handling and admission arithmetic
/// would slip.
const BATCH_CAP: usize = 256;

#[test]
fn adversarial_batch_sizes_are_pipeline_invariant() {
    for batch in [1, 2, BATCH_CAP - 1, BATCH_CAP, BATCH_CAP + 1] {
        for policy in [PolicyKind::NeoMem, PolicyKind::Pebs, PolicyKind::FirstTouch] {
            for shape in [DiffShape::SingleTenant, DiffShape::CoRun] {
                diffcheck::diff_case_batched(
                    WorkloadKind::Gups,
                    policy,
                    shape,
                    BUDGET / 2,
                    Some(batch),
                )
                .assert_identical();
            }
        }
    }
}

mod random_event_counts {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 12,
            failure_persistence: None,
            ..ProptestConfig::default()
        })]

        /// Any (event count, batch size) pair is pipeline-invariant:
        /// random totals land chunk tails at arbitrary offsets in the
        /// SWAR kernels' word-at-a-time sweeps, and random batch sizes
        /// land them against arbitrary admission boundaries.
        #[test]
        fn random_event_counts_are_pipeline_invariant(
            budget in 1u64..3_000,
            batch in 1usize..300,
            policy in prop::sample::select(vec![
                PolicyKind::NeoMem,
                PolicyKind::Memtis,
                PolicyKind::FirstTouch,
            ]),
        ) {
            diffcheck::diff_case_batched(
                WorkloadKind::Gups,
                policy,
                DiffShape::SingleTenant,
                budget,
                Some(batch),
            )
            .assert_identical();
        }
    }
}

#[test]
fn staged_is_the_default_and_serial_is_reachable() {
    // The guarantee the rest of the suite rests on: the corpus really
    // does flip the mode, and the default config runs staged.
    use neomem_sim::{PipelineMode, SimConfig};
    assert_eq!(SimConfig::quick(64, 2).pipeline, PipelineMode::Staged);
    assert_ne!(PipelineMode::Staged, PipelineMode::Serial);
}

#[test]
fn a_divergent_pair_is_actually_caught() {
    // Confidence in the oracle itself: two *different* experiments must
    // not compare equal under the Debug fingerprint.
    let a = diffcheck::diff_case(
        WorkloadKind::Gups,
        PolicyKind::FirstTouch,
        DiffShape::SingleTenant,
        BUDGET,
    );
    let b = diffcheck::diff_case(
        WorkloadKind::Btree,
        PolicyKind::FirstTouch,
        DiffShape::SingleTenant,
        BUDGET,
    );
    assert_ne!(a.serial, b.serial, "distinct workloads must fingerprint differently");
}
