//! Differential testing of the staged engine core.
//!
//! The engine's hot loop runs each event batch stage by stage
//! ([`neomem_sim::PipelineMode::Staged`], the default); the
//! event-at-a-time path ([`neomem_sim::PipelineMode::Serial`]) is the
//! reference semantics every `BENCH_*.json` baseline was recorded
//! against. These tests run the [`neomem_bench::diffcheck`] corpus —
//! every workload kind × every dispatch-class policy × {single-tenant,
//! co-run, mid-fault, mid-phase} — under both modes and require the
//! full `Debug` rendering of the reports to match byte for byte.
//!
//! Debug builds are ~an order of magnitude slower than the release CI
//! gate (`neomem-bench differential`), so the per-case budget here is
//! small; the corpus breadth is identical.

use neomem_bench::diffcheck::{self, DiffShape};
use neomem_policies::PolicyKind;
use neomem_workloads::WorkloadKind;

/// Per-case access budget. The mid-fault plan's last edge clears by
/// ~400 µs of virtual time, well inside a run of this size.
const BUDGET: u64 = 6_000;

fn assert_shape(shape: DiffShape) {
    let mut kinds = WorkloadKind::FIG11.to_vec();
    kinds.push(WorkloadKind::Redis);
    for kind in kinds {
        for policy in diffcheck::policies() {
            diffcheck::diff_case(kind, policy, shape, BUDGET).assert_identical();
        }
    }
}

#[test]
fn single_tenant_runs_are_pipeline_invariant() {
    assert_shape(DiffShape::SingleTenant);
}

#[test]
fn corun_runs_are_pipeline_invariant() {
    assert_shape(DiffShape::CoRun);
}

#[test]
fn mid_fault_runs_are_pipeline_invariant() {
    assert_shape(DiffShape::MidFault);
}

#[test]
fn mid_phase_runs_are_pipeline_invariant() {
    assert_shape(DiffShape::MidPhase);
}

#[test]
fn staged_is_the_default_and_serial_is_reachable() {
    // The guarantee the rest of the suite rests on: the corpus really
    // does flip the mode, and the default config runs staged.
    use neomem_sim::{PipelineMode, SimConfig};
    assert_eq!(SimConfig::quick(64, 2).pipeline, PipelineMode::Staged);
    assert_ne!(PipelineMode::Staged, PipelineMode::Serial);
}

#[test]
fn a_divergent_pair_is_actually_caught() {
    // Confidence in the oracle itself: two *different* experiments must
    // not compare equal under the Debug fingerprint.
    let a = diffcheck::diff_case(
        WorkloadKind::Gups,
        PolicyKind::FirstTouch,
        DiffShape::SingleTenant,
        BUDGET,
    );
    let b = diffcheck::diff_case(
        WorkloadKind::Btree,
        PolicyKind::FirstTouch,
        DiffShape::SingleTenant,
        BUDGET,
    );
    assert_ne!(a.serial, b.serial, "distinct workloads must fingerprint differently");
}
