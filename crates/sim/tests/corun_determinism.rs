//! Co-run determinism: the interleave schedule is defined at event
//! granularity, so `SimConfig::batch_size` (a host-side dispatch knob)
//! must never change a co-run's simulated results — the co-run
//! counterpart of the single-tenant `batch_determinism` suite.

use neomem_policies::{FirstTouchPolicy, NeoMemParams, NeoMemPolicy, TieringPolicy};
use neomem_profilers::NeoProfDriverConfig;
use neomem_sim::{CoRunConfig, CoRunReport, CoRunSimulation};
use neomem_types::PageNum;
use neomem_workloads::{TenantMix, WorkloadKind};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Policy {
    FirstTouch,
    NeoMem,
}

fn mix() -> TenantMix {
    TenantMix::builder()
        .tenant(WorkloadKind::Gups, 1024, 11)
        .weighted_tenant(WorkloadKind::Silo, 1024, 2, 12)
        .tenant(WorkloadKind::PageRank, 1024, 13)
        .build()
        .expect("valid mix")
}

fn build_policy(policy: Policy, config: &CoRunConfig) -> Box<dyn TieringPolicy> {
    match policy {
        Policy::FirstTouch => Box::new(FirstTouchPolicy::new()),
        Policy::NeoMem => {
            let slow_base = config.sim.memory_config().fast.capacity_frames;
            let dev = neomem_neoprof::NeoProfConfig::small(PageNum::new(slow_base));
            Box::new(
                NeoMemPolicy::new(dev, NeoProfDriverConfig::default(), NeoMemParams::scaled(1000))
                    .expect("valid NeoMem config"),
            )
        }
    }
}

fn run(kind: Policy, batch_size: usize, fast_share_cap: Option<f64>) -> CoRunReport {
    let mix = mix();
    let mut config = CoRunConfig::quick(&mix, 2);
    config.sim.max_accesses = 120_000;
    config.sim.batch_size = batch_size;
    config.fast_share_cap = fast_share_cap;
    let policy = build_policy(kind, &config);
    CoRunSimulation::new(config, &mix, policy).expect("valid co-run").run()
}

/// Every simulated quantity of two reports must match exactly.
fn assert_identical(a: &CoRunReport, b: &CoRunReport, label: &str) {
    assert_eq!(a.combined.runtime, b.combined.runtime, "{label}: runtime");
    assert_eq!(a.combined.accesses, b.combined.accesses, "{label}: accesses");
    assert_eq!(a.combined.scalar_metrics(), b.combined.scalar_metrics(), "{label}: metrics");
    assert_eq!(a.combined.timeline.len(), b.combined.timeline.len(), "{label}: timeline");
    assert_eq!(a.combined.markers, b.combined.markers, "{label}: markers");
    assert_eq!(a.tenants.len(), b.tenants.len(), "{label}: tenant count");
    for (x, y) in a.tenants.iter().zip(&b.tenants) {
        assert_eq!(x, y, "{label}: tenant {} section", x.tenant);
    }
    assert_eq!(a.contention, b.contention, "{label}: contention");
}

#[test]
fn corun_is_batch_size_invariant_under_first_touch() {
    let reference = run(Policy::FirstTouch, 256, None);
    for batch in [1usize, 7, 64, 1024] {
        let other = run(Policy::FirstTouch, batch, None);
        assert_identical(&reference, &other, &format!("first-touch batch={batch}"));
    }
}

#[test]
fn corun_is_batch_size_invariant_under_neomem() {
    // NeoMem exercises the tick path (promotions, shootdowns, quota)
    // plus the per-tenant fairness machinery.
    let reference = run(Policy::NeoMem, 256, Some(1.5));
    for batch in [1usize, 33, 512] {
        let other = run(Policy::NeoMem, batch, Some(1.5));
        assert_identical(&reference, &other, &format!("neomem batch={batch}"));
    }
}

#[test]
fn corun_repeats_exactly_for_a_fixed_config() {
    let a = run(Policy::NeoMem, 256, None);
    let b = run(Policy::NeoMem, 256, None);
    assert_identical(&a, &b, "repeat");
}

#[test]
fn fairness_cap_changes_results_but_not_determinism() {
    // The cap is a real behavioural knob (results differ), and each
    // setting is itself deterministic.
    let capped_a = run(Policy::NeoMem, 256, Some(1.0));
    let capped_b = run(Policy::NeoMem, 256, Some(1.0));
    assert_identical(&capped_a, &capped_b, "capped repeat");
}
