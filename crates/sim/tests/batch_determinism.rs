//! The engine's batch contract: a batched run — any batch size, with
//! or without the per-workload `fill_events` overrides — produces a
//! `RunReport` identical to the event-at-a-time seed path.
//!
//! This is the invariant that lets `BENCH_*.json` baselines survive
//! host-side performance work: batching amortises dispatch, it never
//! changes simulated results.

use neomem_policies::{FirstTouchPolicy, NeoMemParams, NeoMemPolicy, TieringPolicy};
use neomem_profilers::NeoProfDriverConfig;
use neomem_sim::{RunReport, SimConfig, Simulation};
use neomem_types::PageNum;
use neomem_workloads::{Workload, WorkloadEvent, WorkloadKind};

const RSS_PAGES: u64 = 1024;
const ACCESSES: u64 = 60_000;
const SEED: u64 = 2024;

/// Forces the *default* `fill_events` (the `next_event` loop) even for
/// workloads that override it — the unbatched seed path in trait form.
struct Unbatched(Box<dyn Workload>);

impl Workload for Unbatched {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn rss_pages(&self) -> u64 {
        self.0.rss_pages()
    }
    fn next_event(&mut self) -> WorkloadEvent {
        self.0.next_event()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Policy {
    FirstTouch,
    NeoMem,
}

fn build_policy(policy: Policy, config: &SimConfig) -> Box<dyn TieringPolicy> {
    match policy {
        Policy::FirstTouch => Box::new(FirstTouchPolicy::new()),
        Policy::NeoMem => {
            let slow_base = config.memory_config().fast.capacity_frames;
            let dev = neomem_neoprof::NeoProfConfig::small(PageNum::new(slow_base));
            Box::new(
                NeoMemPolicy::new(
                    dev,
                    NeoProfDriverConfig::default(),
                    NeoMemParams::scaled(1000),
                )
                .expect("valid NeoMem config"),
            )
        }
    }
}

fn run(kind: WorkloadKind, policy: Policy, batch_size: usize, unbatched: bool) -> RunReport {
    let config = SimConfig {
        max_accesses: ACCESSES,
        batch_size,
        ..SimConfig::quick(RSS_PAGES, 2)
    };
    let workload = kind.build(RSS_PAGES, SEED);
    let workload: Box<dyn Workload> =
        if unbatched { Box::new(Unbatched(workload)) } else { workload };
    let policy = build_policy(policy, &config);
    Simulation::new(config, workload, policy).expect("valid simulation").run()
}

/// Every observable of a report, with floats bit-compared. Keep this
/// exhaustive: a field missed here is a field batching could silently
/// change.
fn fingerprint(r: &RunReport) -> (Vec<(&'static str, u64)>, Vec<String>, Vec<String>) {
    let scalars = r.scalar_metrics();
    let timeline = r
        .timeline
        .iter()
        .map(|p| {
            format!(
                "{}|{}|{}|{:x}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
                p.at,
                p.accesses,
                p.slow_accesses,
                p.throughput.to_bits(),
                p.threshold,
                p.p_fraction.map(f64::to_bits),
                p.bandwidth_util.map(f64::to_bits),
                p.read_util.map(f64::to_bits),
                p.write_util.map(f64::to_bits),
                p.error_bound,
                p.histogram,
            )
        })
        .collect();
    let markers = r.markers.iter().map(|m| format!("{}|{}|{}", m.at, m.id, m.label)).collect();
    (scalars, timeline, markers)
}

fn assert_identical(kind: WorkloadKind, policy: Policy) {
    let reference = run(kind, policy, 1, true);
    let reference_fp = fingerprint(&reference);
    for batch_size in [1usize, 7, 256, 1024] {
        let batched = run(kind, policy, batch_size, false);
        assert_eq!(
            fingerprint(&batched),
            reference_fp,
            "{kind} / {policy:?}: batch={batch_size} diverged from the unbatched seed path"
        );
    }
}

#[test]
fn first_touch_batched_runs_match_seed_path() {
    let mut kinds = WorkloadKind::FIG11.to_vec();
    kinds.push(WorkloadKind::Redis);
    for kind in kinds {
        assert_identical(kind, Policy::FirstTouch);
    }
}

#[test]
fn neomem_batched_runs_match_seed_path() {
    let mut kinds = WorkloadKind::FIG11.to_vec();
    kinds.push(WorkloadKind::Redis);
    for kind in kinds {
        assert_identical(kind, Policy::NeoMem);
    }
}

#[test]
fn fault_plan_runs_are_batch_invariant() {
    // Fault edges fire on the virtual clock, so a run that suffers an
    // outage, a link brownout and a capacity loss must still be
    // byte-identical at any batch size — including the degradation
    // metrics themselves (covered by `scalar_metrics`).
    use neomem_types::{FaultPlan, Nanos};
    let plan = FaultPlan::builder()
        .outage(Nanos::from_micros(400), Nanos::from_micros(300))
        .link_degraded(Nanos::from_micros(900), Nanos::from_micros(200), 4, 2)
        .capacity_loss(Nanos::from_micros(1300), Nanos::from_micros(200), 32)
        .build()
        .expect("valid plan");
    let run_faulted = |policy: Policy, batch_size: usize, unbatched: bool| {
        let config = SimConfig {
            max_accesses: ACCESSES,
            batch_size,
            faults: plan.clone(),
            ..SimConfig::quick(RSS_PAGES, 2)
        };
        let workload = WorkloadKind::Gups.build(RSS_PAGES, SEED);
        let workload: Box<dyn Workload> =
            if unbatched { Box::new(Unbatched(workload)) } else { workload };
        let policy = build_policy(policy, &config);
        Simulation::new(config, workload, policy).expect("valid simulation").run()
    };
    for policy in [Policy::FirstTouch, Policy::NeoMem] {
        let reference = run_faulted(policy, 1, true);
        let d = reference.degradation.expect("fault plan must produce metrics");
        assert_eq!(d.fault_events, 3, "{policy:?}");
        assert!(d.time_to_recover.is_some(), "{policy:?} must recover in-run");
        assert!(d.degraded_time > Nanos::ZERO, "{policy:?}");
        let reference_fp = fingerprint(&reference);
        for batch_size in [1usize, 7, 256, 1024] {
            assert_eq!(
                fingerprint(&run_faulted(policy, batch_size, false)),
                reference_fp,
                "{policy:?}: batch={batch_size} diverged under faults"
            );
        }
    }
}

#[test]
fn max_time_stop_is_batch_invariant() {
    // The simulated-time stop lives on the hoisted deadline path; a
    // batched run must cut off at exactly the same access.
    use neomem_types::Nanos;
    let run_limited = |batch_size: usize, unbatched: bool| {
        let config = SimConfig {
            max_accesses: u64::MAX / 2,
            max_time: Some(Nanos::from_micros(300)),
            batch_size,
            ..SimConfig::quick(RSS_PAGES, 2)
        };
        let workload = WorkloadKind::Silo.build(RSS_PAGES, 5);
        let workload: Box<dyn Workload> =
            if unbatched { Box::new(Unbatched(workload)) } else { workload };
        let policy = build_policy(Policy::FirstTouch, &config);
        Simulation::new(config, workload, policy).expect("valid simulation").run()
    };
    let reference = fingerprint(&run_limited(1, true));
    for batch_size in [1usize, 13, 512] {
        assert_eq!(fingerprint(&run_limited(batch_size, false)), reference, "batch={batch_size}");
    }
}
