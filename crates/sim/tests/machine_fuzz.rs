//! Property-based tests for the machine-file reader: no input ever
//! panics [`MachineDescription::parse`], and every description that
//! does parse can build a `SimConfig` without panicking.

use neomem_sim::MachineDescription;
use proptest::prelude::*;

/// One machine-file-shaped line: the real section headers and keys
/// with values from plausible to absurd.
fn line() -> impl Strategy<Value = String> {
    let keys = prop::sample::select(vec![
        "schema", "kind", "name", "title", "preset", "ratio", "fast_pages", "slow_pages",
        "total_pages", "fast_read_latency", "slow_read_latency", "fast_bandwidth",
        "slow_bandwidth", "l1", "l2", "llc", "l1_ways", "entries", "ways", "walk",
        "cpu_per_access", "tick_quantum", "sample_interval", "sketch_width", "sketch_depth",
        "sketch_seed", "hot_buffer_entries", "fifo_depth", "drain_per_tick",
    ]);
    let values = prop_oneof![
        (0u64..u64::MAX).prop_map(|n| n.to_string()),
        (0u64..100_000).prop_map(|n| format!("{n}ns")),
        (0u64..4096).prop_map(|n| format!("{n}KiB")),
        (0u64..100).prop_map(|n| format!("{n}GiB/s")),
        prop::sample::select(vec![
            "machine", "quick", "large", "small", "default", "true", "-3", "0.5", "zero",
        ])
        .prop_map(str::to_string),
    ];
    prop_oneof![
        prop::sample::select(vec!["[memory]", "[caches]", "[tlb]", "[engine]", "[neoprof]"])
            .prop_map(str::to_string),
        (keys, values).prop_map(|(k, v)| format!("{k} = {v}")),
        Just(String::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256,
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    /// Arbitrary printable text never panics the machine reader.
    #[test]
    fn arbitrary_text_never_panics(
        chars in prop::collection::vec(
            prop::sample::select(
                (b' '..=b'~').map(char::from).chain(['\n', '\t']).collect::<Vec<_>>(),
            ),
            0..400,
        ),
    ) {
        let input: String = chars.into_iter().collect();
        let _ = MachineDescription::parse(&input);
    }

    /// Machine-shaped documents never panic, and any accepted
    /// description builds a `SimConfig` — validation at parse time
    /// must be strong enough that construction cannot fail later.
    #[test]
    fn accepted_machines_always_build_configs(
        lines in prop::collection::vec(line(), 0..25),
    ) {
        let mut text = String::from("schema = 1\nkind = machine\nname = fuzz\n");
        for l in &lines {
            text.push_str(l);
            text.push('\n');
        }
        if let Ok(machine) = MachineDescription::parse(&text) {
            let config = machine.sim_config(4096, 4);
            prop_assert!(config.memory_config().fast.capacity_frames > 0);
        }
    }
}
