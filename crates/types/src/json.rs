//! A hand-rolled, dependency-free JSON tree.
//!
//! The offline vendor set has no serde, so campaign results are
//! serialised (and checked-in baselines parsed back) through this small
//! value model. Objects preserve insertion order, which is what makes
//! rendered reports byte-stable across runs.
//!
//! The tree also carries machine snapshots (`neomem_sim` checkpoint /
//! warm-start files), which is why it lives in `neomem_types`: every
//! simulated component serialises its state through [`Json`], and the
//! strict `req_*` accessors give snapshot loaders schema validation
//! with field-path error messages instead of panics.

use core::fmt;
use std::fmt::Write as _;

use crate::Error;

/// Shorthand for the strict-accessor result type; kept distinct from
/// the parser's `Result<_, JsonError>` signatures below.
type SnapResult<T> = core::result::Result<T, Error>;

/// A JSON value.
///
/// Numbers keep their original flavour (`U64`/`I64`/`F64`) so counter
/// values round-trip exactly rather than through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (positive values parse as [`Json::U64`]).
    I64(i64),
    /// A floating-point number; non-finite values render as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key → value list.
    Obj(Vec<(String, Json)>),
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::U64(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::U64(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        if v >= 0 {
            Json::U64(v as u64)
        } else {
            Json::I64(v)
        }
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::F64(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K, V, I>(pairs: I) -> Json
    where
        K: Into<String>,
        V: Into<Json>,
        I: IntoIterator<Item = (K, V)>,
    {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v.into())).collect())
    }

    /// Builds an array from values.
    pub fn arr<V: Into<Json>, I: IntoIterator<Item = V>>(values: I) -> Json {
        Json::Arr(values.into_iter().map(Into::into).collect())
    }

    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64`, for any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation and a stable key
    /// order (insertion order) — the format used for checked-in
    /// baselines and CI artifacts.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let nl = |out: &mut String, d: usize| {
            if let Some(width) = indent {
                out.push('\n');
                out.extend(std::iter::repeat_n(' ', width * d));
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // `{:?}` is the shortest representation that
                    // round-trips, and keeps a `.0` on integral floats.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    nl(out, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                nl(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    nl(out, depth + 1);
                    write_escaped(key, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                nl(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with a byte offset on malformed input,
    /// including trailing garbage after the top-level value and
    /// nesting deeper than [`MAX_PARSE_DEPTH`] (the recursive parser
    /// must report pathological inputs instead of overflowing the
    /// stack — baseline files come from the filesystem, i.e. users).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut parser = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

impl Json {
    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Strict lookup: the value under `key`, or an
    /// [`Error::Snapshot`] naming the missing field.
    ///
    /// # Errors
    ///
    /// Fails when `self` is not an object or lacks `key`.
    pub fn req(&self, key: &str) -> SnapResult<&Json> {
        match self {
            Json::Obj(_) => self
                .get(key)
                .ok_or_else(|| Error::snapshot(format!("missing field {key:?}"))),
            other => Err(Error::snapshot(format!(
                "expected object with field {key:?}, found {}",
                other.type_name()
            ))),
        }
    }

    /// Strict `u64` field accessor (see [`Json::req`]).
    ///
    /// # Errors
    ///
    /// Fails when the field is missing or not a non-negative integer.
    pub fn req_u64(&self, key: &str) -> SnapResult<u64> {
        self.req(key)?
            .as_u64()
            .ok_or_else(|| Error::snapshot(format!("field {key:?} is not a u64")))
    }

    /// Strict finite-`f64` field accessor (see [`Json::req`]).
    ///
    /// # Errors
    ///
    /// Fails when the field is missing, non-numeric or non-finite
    /// (`null` — the rendering of NaN/∞ — is rejected here).
    pub fn req_f64(&self, key: &str) -> SnapResult<f64> {
        let v = self
            .req(key)?
            .as_f64()
            .ok_or_else(|| Error::snapshot(format!("field {key:?} is not a number")))?;
        if !v.is_finite() {
            return Err(Error::snapshot(format!("field {key:?} is not finite")));
        }
        Ok(v)
    }

    /// Strict `bool` field accessor (see [`Json::req`]).
    ///
    /// # Errors
    ///
    /// Fails when the field is missing or not a boolean.
    pub fn req_bool(&self, key: &str) -> SnapResult<bool> {
        self.req(key)?
            .as_bool()
            .ok_or_else(|| Error::snapshot(format!("field {key:?} is not a bool")))
    }

    /// Strict string field accessor (see [`Json::req`]).
    ///
    /// # Errors
    ///
    /// Fails when the field is missing or not a string.
    pub fn req_str(&self, key: &str) -> SnapResult<&str> {
        self.req(key)?
            .as_str()
            .ok_or_else(|| Error::snapshot(format!("field {key:?} is not a string")))
    }

    /// Strict array field accessor (see [`Json::req`]).
    ///
    /// # Errors
    ///
    /// Fails when the field is missing or not an array.
    pub fn req_arr(&self, key: &str) -> SnapResult<&[Json]> {
        self.req(key)?
            .as_arr()
            .ok_or_else(|| Error::snapshot(format!("field {key:?} is not an array")))
    }

    /// Strict hex-packed `u64` vector accessor: the field must be a
    /// string produced by [`hex_from_u64s`].
    ///
    /// # Errors
    ///
    /// Fails when the field is missing, not a string, or not a valid
    /// multiple-of-16 hex digit sequence.
    pub fn req_u64s(&self, key: &str) -> SnapResult<Vec<u64>> {
        u64s_from_hex(self.req_str(key)?)
            .map_err(|e| Error::snapshot(format!("field {key:?}: {e}")))
    }

    /// Strict hex-packed `u16` vector accessor (see [`hex_from_u16s`]).
    ///
    /// # Errors
    ///
    /// Fails when the field is missing, not a string, or not a valid
    /// multiple-of-4 hex digit sequence.
    pub fn req_u16s(&self, key: &str) -> SnapResult<Vec<u16>> {
        u16s_from_hex(self.req_str(key)?)
            .map_err(|e| Error::snapshot(format!("field {key:?}: {e}")))
    }

    /// The variant name, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::U64(_) | Json::I64(_) => "integer",
            Json::F64(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// The path of the first non-finite [`Json::F64`] anywhere in the
    /// tree, or `None` when every float is finite. Non-finite floats
    /// render as `null`, silently vanishing from result documents —
    /// callers that persist figures use this to fail loudly instead.
    pub fn find_non_finite(&self) -> Option<String> {
        fn walk(v: &Json, path: &str) -> Option<String> {
            match v {
                Json::F64(f) if !f.is_finite() => Some(path.to_string()),
                Json::Arr(items) => items
                    .iter()
                    .enumerate()
                    .find_map(|(i, item)| walk(item, &format!("{path}[{i}]"))),
                Json::Obj(pairs) => pairs.iter().find_map(|(k, item)| {
                    let sub = if path.is_empty() { k.clone() } else { format!("{path}.{k}") };
                    walk(item, &sub)
                }),
                _ => None,
            }
        }
        walk(self, "")
    }
}

/// Packs `u64` words into a lowercase hex string, 16 digits per word —
/// the compact encoding snapshots use for bulk state (page tables,
/// sketch counters, cache tag arrays) where a JSON array per element
/// would bloat files by an order of magnitude.
pub fn hex_from_u64s(words: &[u64]) -> String {
    let mut out = String::with_capacity(words.len() * 16);
    for w in words {
        let _ = write!(out, "{w:016x}");
    }
    out
}

/// Unpacks a [`hex_from_u64s`] string.
///
/// # Errors
///
/// Returns a message when the length is not a multiple of 16 or any
/// digit is not hex.
pub fn u64s_from_hex(s: &str) -> core::result::Result<Vec<u64>, String> {
    if !s.len().is_multiple_of(16) {
        return Err(format!("hex length {} is not a multiple of 16", s.len()));
    }
    s.as_bytes()
        .chunks(16)
        .map(|chunk| {
            let text = core::str::from_utf8(chunk).map_err(|_| "non-ASCII hex".to_string())?;
            u64::from_str_radix(text, 16).map_err(|_| format!("invalid hex word {text:?}"))
        })
        .collect()
}

/// Packs `u16` values into a lowercase hex string, 4 digits per value.
pub fn hex_from_u16s(values: &[u16]) -> String {
    let mut out = String::with_capacity(values.len() * 4);
    for v in values {
        let _ = write!(out, "{v:04x}");
    }
    out
}

/// Unpacks a [`hex_from_u16s`] string.
///
/// # Errors
///
/// Returns a message when the length is not a multiple of 4 or any
/// digit is not hex.
pub fn u16s_from_hex(s: &str) -> core::result::Result<Vec<u16>, String> {
    if !s.len().is_multiple_of(4) {
        return Err(format!("hex length {} is not a multiple of 4", s.len()));
    }
    s.as_bytes()
        .chunks(4)
        .map(|chunk| {
            let text = core::str::from_utf8(chunk).map_err(|_| "non-ASCII hex".to_string())?;
            u16::from_str_radix(text, 16).map_err(|_| format!("invalid hex word {text:?}"))
        })
        .collect()
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset in the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting [`Json::parse`] accepts. Result documents
/// nest a handful of levels; 128 leaves two orders of magnitude of
/// headroom while keeping the recursive parser a safe distance from
/// stack exhaustion on hostile input.
pub const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { pos: self.pos, msg: msg.to_string() }
    }

    /// Guards one level of container recursion.
    fn descend(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(self.err("nesting deeper than MAX_PARSE_DEPTH"));
        }
        Ok(())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected literal {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.descend()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.descend()?;
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            // Last-wins would silently drop data from hand-edited
            // baselines and snapshots; refuse duplicates by name.
            if pairs.iter().any(|(existing, _)| *existing == key) {
                return Err(JsonError {
                    pos: self.pos,
                    msg: format!("duplicate object key \"{key}\""),
                });
            }
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(byte) if byte < 0x80 => {
                    out.push(byte as char);
                    self.pos += 1;
                }
                Some(byte) => {
                    // Copy one multi-byte UTF-8 scalar. The input is a
                    // &str, so boundaries are valid; decode only this
                    // scalar's bytes (validating the whole tail per
                    // character would make parsing quadratic).
                    let len = match byte {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    let s = core::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the four hex digits after `\u`, combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: a `\uXXXX` low surrogate must follow.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(self.err("invalid low surrogate"));
                }
                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("unpaired high surrogate"));
        }
        if (0xDC00..0xE000).contains(&hi) {
            return Err(self.err("unpaired low surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a') as u32 + 10,
                Some(c @ b'A'..=b'F') => (c - b'A') as u32 + 10,
                _ => return Err(self.err("expected four hex digits")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>().map(Json::F64).map_err(|_| JsonError {
            pos: start,
            msg: format!("invalid number {text:?}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(18_446_744_073_709_551_615).render(), "18446744073709551615");
        assert_eq!(Json::I64(-42).render(), "-42");
        assert_eq!(Json::F64(1.0).render(), "1.0");
        assert_eq!(Json::F64(0.1).render(), "0.1");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn escapes_strings() {
        let s = Json::Str("a\"b\\c\nd\te\u{01}f".into());
        assert_eq!(s.render(), "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
        // Non-ASCII passes through as UTF-8.
        assert_eq!(Json::Str("θ=8 → π".into()).render(), "\"θ=8 → π\"");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let o = Json::obj([("z", 1u64), ("a", 2u64), ("m", 3u64)]);
        assert_eq!(o.render(), r#"{"z":1,"a":2,"m":3}"#);
    }

    #[test]
    fn round_trips_documents() {
        let doc = Json::obj([
            ("name", Json::from("fig11")),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            ("count", Json::U64(u64::MAX)),
            ("delta", Json::I64(-7)),
            ("ratio", Json::F64(1.375)),
            ("tags", Json::arr(["a\"b", "θ"])),
            ("nested", Json::obj([("x", Json::arr([1u64, 2, 3]))])),
        ]);
        for rendered in [doc.render(), doc.render_pretty()] {
            let parsed = Json::parse(&rendered).expect("round trip parses");
            assert_eq!(parsed, doc, "mismatch for {rendered}");
        }
    }

    #[test]
    fn render_is_idempotent_through_parse() {
        let text = r#"{"a":[1,-2,3.5,"xA",true,null],"b":{"c":0.25}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(Json::parse(&v.render()).unwrap().render(), v.render());
    }

    #[test]
    fn parses_unicode_escapes_and_surrogates() {
        assert_eq!(Json::parse(r#""A""#).unwrap(), Json::Str("A".into()));
        // 😀 U+1F600 as a surrogate pair.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\"}", "tru", "1 2", "\"abc", "{\"a\":}", "[1 2]"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn duplicate_object_keys_are_rejected_by_name() {
        let err = Json::parse(r#"{"a":1,"b":2,"a":3}"#).expect_err("must reject duplicate");
        assert!(err.msg.contains("duplicate object key \"a\""), "{err}");
        // Nested objects are checked too, and distinct keys still parse.
        assert!(Json::parse(r#"{"o":{"x":1,"x":2}}"#).is_err());
        assert!(Json::parse(r#"{"a":1,"b":{"a":2}}"#).is_ok());
    }

    #[test]
    fn depth_limit_rejects_pathological_nesting_without_overflow() {
        // Just inside the limit parses; past it errors (instead of
        // blowing the stack on hostile input).
        let deep_ok = format!("{}0{}", "[".repeat(127), "]".repeat(127));
        assert!(Json::parse(&deep_ok).is_ok());
        let too_deep = format!("{}0{}", "[".repeat(1_000_000), "]".repeat(1_000_000));
        let err = Json::parse(&too_deep).expect_err("must reject");
        assert!(err.msg.contains("nesting"), "{err}");
        let mixed = format!("{}1{}", "[{\"k\":".repeat(500_000), "}]".repeat(500_000));
        assert!(Json::parse(&mixed).is_err());
    }

    #[test]
    fn number_flavours_survive_parsing() {
        assert_eq!(Json::parse("12").unwrap(), Json::U64(12));
        assert_eq!(Json::parse("-12").unwrap(), Json::I64(-12));
        assert_eq!(Json::parse("12.5").unwrap(), Json::F64(12.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::F64(1000.0));
        assert_eq!(Json::parse("18446744073709551615").unwrap(), Json::U64(u64::MAX));
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"cells":[{"runtime_ns":42}],"name":"g"}"#).unwrap();
        assert_eq!(doc.get("name").and_then(Json::as_str), Some("g"));
        let cells = doc.get("cells").and_then(Json::as_arr).unwrap();
        assert_eq!(cells[0].get("runtime_ns").and_then(Json::as_u64), Some(42));
        assert_eq!(cells[0].get("runtime_ns").and_then(Json::as_f64), Some(42.0));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn pretty_rendering_is_parseable_and_indented() {
        let doc = Json::obj([("a", Json::arr([1u64])), ("b", Json::obj::<&str, Json, _>([]))]);
        let pretty = doc.render_pretty();
        assert!(pretty.contains("\n  \"a\": ["));
        assert!(pretty.ends_with('\n'));
        assert_eq!(Json::parse(&pretty).unwrap(), doc);
    }

    #[test]
    fn strict_accessors_name_the_field() {
        let doc = Json::obj([
            ("n", Json::U64(7)),
            ("f", Json::F64(1.5)),
            ("s", Json::from("x")),
            ("b", Json::Bool(true)),
            ("a", Json::arr([1u64])),
        ]);
        assert_eq!(doc.req_u64("n").unwrap(), 7);
        assert!((doc.req_f64("f").unwrap() - 1.5).abs() < 1e-12);
        assert!((doc.req_f64("n").unwrap() - 7.0).abs() < 1e-12);
        assert_eq!(doc.req_str("s").unwrap(), "x");
        assert!(doc.req_bool("b").unwrap());
        assert_eq!(doc.req_arr("a").unwrap().len(), 1);
        let err = doc.req_u64("missing").unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");
        let err = doc.req_u64("s").unwrap_err();
        assert!(err.to_string().contains("\"s\""), "{err}");
        // Non-objects fail req with a type name, not a panic.
        assert!(Json::U64(1).req("k").is_err());
        // A null (rendered NaN) is rejected by the strict f64 accessor.
        let nan = Json::obj([("v", Json::Null)]);
        assert!(nan.req_f64("v").is_err());
    }

    #[test]
    fn hex_packing_round_trips() {
        let words = vec![0u64, 1, u64::MAX, 0xDEAD_BEEF];
        let hex = hex_from_u64s(&words);
        assert_eq!(hex.len(), 64);
        assert_eq!(u64s_from_hex(&hex).unwrap(), words);
        assert!(u64s_from_hex("123").is_err());
        assert!(u64s_from_hex("zzzzzzzzzzzzzzzz").is_err());

        let values = vec![0u16, 7, u16::MAX];
        let hex = hex_from_u16s(&values);
        assert_eq!(u16s_from_hex(&hex).unwrap(), values);
        assert!(u16s_from_hex("12345").is_err());

        let doc = Json::obj([
            ("w", Json::Str(hex_from_u64s(&words))),
            ("v", Json::Str(hex_from_u16s(&values))),
        ]);
        assert_eq!(doc.req_u64s("w").unwrap(), words);
        assert_eq!(doc.req_u16s("v").unwrap(), values);
    }

    #[test]
    fn non_finite_finder_reports_the_path() {
        let clean = Json::obj([("a", Json::arr([Json::F64(1.0)]))]);
        assert_eq!(clean.find_non_finite(), None);
        let dirty = Json::obj([
            ("ok", Json::F64(2.0)),
            ("grids", Json::arr([Json::obj([("drift", Json::F64(f64::NAN))])])),
        ]);
        assert_eq!(dirty.find_non_finite().as_deref(), Some("grids[0].drift"));
        assert_eq!(Json::F64(f64::INFINITY).find_non_finite().as_deref(), Some(""));
    }

    #[test]
    fn non_finite_finder_descends_nested_arrays() {
        // Array-of-array payloads (figure series of rows) must be
        // walked all the way down — a NaN in an inner array renders as
        // `null` just as silently as a top-level one.
        let doc = Json::obj([(
            "series",
            Json::arr([
                Json::arr([Json::F64(1.0), Json::F64(2.0)]),
                Json::arr([Json::F64(3.0), Json::F64(f64::NAN)]),
            ]),
        )]);
        assert_eq!(doc.find_non_finite().as_deref(), Some("series[1][1]"));
        // Negative infinity hides as deep as NaN does, and the path
        // stays index-accurate through bare (un-keyed) nesting.
        let neg = Json::arr([Json::arr([Json::arr([
            Json::Null,
            Json::F64(f64::NEG_INFINITY),
        ])])]);
        assert_eq!(neg.find_non_finite().as_deref(), Some("[0][0][1]"));
        // Finite floats beside integers and strings stay clean.
        let clean = Json::arr([Json::arr([Json::F64(0.5), Json::U64(7), Json::from("x")])]);
        assert_eq!(clean.find_non_finite(), None);
    }
}
