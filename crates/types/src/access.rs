//! Memory-access descriptors flowing through the simulated system.

use core::fmt;

use crate::{PageNum, VirtPage, LINES_PER_PAGE};

/// Whether a memory access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Read`].
    #[inline]
    pub const fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }

    /// Returns `true` for [`AccessKind::Write`].
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("R"),
            AccessKind::Write => f.write_str("W"),
        }
    }
}

/// One CPU memory access in *virtual* address space, as emitted by a
/// workload generator before address translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// The virtual page touched.
    pub vpage: VirtPage,
    /// The cache line within the page (`0..LINES_PER_PAGE`).
    pub line_in_page: u8,
    /// Read or write.
    pub kind: AccessKind,
}

impl Access {
    /// Creates an access to line `line_in_page` of `vpage`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `line_in_page` is out of range.
    #[inline]
    pub fn new(vpage: VirtPage, line_in_page: u8, kind: AccessKind) -> Self {
        debug_assert!((line_in_page as u64) < LINES_PER_PAGE);
        Self { vpage, line_in_page, kind }
    }

    /// Convenience constructor for a read of line 0.
    #[inline]
    pub fn read(vpage: VirtPage) -> Self {
        Self::new(vpage, 0, AccessKind::Read)
    }

    /// Convenience constructor for a write of line 0.
    #[inline]
    pub fn write(vpage: VirtPage) -> Self {
        Self::new(vpage, 0, AccessKind::Write)
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}+{}", self.kind, self.vpage, self.line_in_page)
    }
}

/// A memory request that missed the LLC and reaches a memory node, in
/// *physical* address space. This is what device-side NeoProf observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRequest {
    /// The physical frame targeted.
    pub frame: PageNum,
    /// The cache line within the frame (`0..LINES_PER_PAGE`).
    pub line_in_page: u8,
    /// Read or write at the memory interface (a dirty eviction arrives as a
    /// write even if the CPU instruction was a load).
    pub kind: AccessKind,
}

impl MemRequest {
    /// Creates a request for line `line_in_page` of `frame`.
    #[inline]
    pub fn new(frame: PageNum, line_in_page: u8, kind: AccessKind) -> Self {
        debug_assert!((line_in_page as u64) < LINES_PER_PAGE);
        Self { frame, line_in_page, kind }
    }
}

impl fmt::Display for MemRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}+{}", self.kind, self.frame, self.line_in_page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_predicates() {
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Write.is_read());
    }

    #[test]
    fn access_constructors() {
        let a = Access::read(VirtPage::new(9));
        assert_eq!(a.kind, AccessKind::Read);
        assert_eq!(a.vpage.index(), 9);
        let w = Access::write(VirtPage::new(2));
        assert_eq!(w.kind, AccessKind::Write);
    }

    #[test]
    fn displays_are_nonempty() {
        let a = Access::new(VirtPage::new(1), 3, AccessKind::Write);
        assert!(format!("{a}").contains("W"));
        let r = MemRequest::new(PageNum::new(4), 0, AccessKind::Read);
        assert!(format!("{r}").contains("R"));
    }
}
