//! Memory tiers and NUMA node identifiers.

use core::fmt;

/// The performance class of a memory node.
///
/// The paper's system has exactly two tiers: CPU-attached DDR DRAM (fast)
/// and CXL-attached memory (slow). We keep the enum open for future
/// multi-tier extensions via explicit match arms in consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// CPU-attached DDR DRAM (the promotion target).
    Fast,
    /// CXL-attached memory (the demotion target, observed by NeoProf).
    Slow,
}

impl Tier {
    /// Returns `true` for the fast (DDR) tier.
    #[inline]
    pub const fn is_fast(self) -> bool {
        matches!(self, Tier::Fast)
    }

    /// Returns `true` for the slow (CXL) tier.
    #[inline]
    pub const fn is_slow(self) -> bool {
        matches!(self, Tier::Slow)
    }

    /// Returns the opposite tier.
    #[inline]
    pub const fn other(self) -> Tier {
        match self {
            Tier::Fast => Tier::Slow,
            Tier::Slow => Tier::Fast,
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tier::Fast => f.write_str("fast"),
            Tier::Slow => f.write_str("slow"),
        }
    }
}

/// A NUMA node identifier, mirroring how Linux exposes CXL memory as a
/// CPU-less NUMA node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u8);

impl NodeId {
    /// Node 0: the CPU socket's local DDR DRAM.
    pub const FAST: NodeId = NodeId(0);
    /// Node 1: the CPU-less CXL memory node.
    pub const SLOW: NodeId = NodeId(1);

    /// Creates a node identifier.
    #[inline]
    pub const fn new(id: u8) -> Self {
        Self(id)
    }

    /// Returns the raw node number.
    #[inline]
    pub const fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl From<Tier> for NodeId {
    fn from(tier: Tier) -> Self {
        match tier {
            Tier::Fast => NodeId::FAST,
            Tier::Slow => NodeId::SLOW,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_predicates_and_other() {
        assert!(Tier::Fast.is_fast());
        assert!(Tier::Slow.is_slow());
        assert_eq!(Tier::Fast.other(), Tier::Slow);
        assert_eq!(Tier::Slow.other(), Tier::Fast);
    }

    #[test]
    fn node_id_mapping() {
        assert_eq!(NodeId::from(Tier::Fast), NodeId::FAST);
        assert_eq!(NodeId::from(Tier::Slow), NodeId::SLOW);
        assert_eq!(NodeId::new(3).index(), 3);
    }

    #[test]
    fn displays() {
        assert_eq!(format!("{}", Tier::Fast), "fast");
        assert_eq!(format!("{}", NodeId::SLOW), "node1");
    }
}
