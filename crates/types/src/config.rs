//! The declarative text-config format: machines, tenant mixes, phased
//! workloads and scenario timelines as data files instead of Rust.
//!
//! The offline vendor set has no serde or toml, so — like [`crate::json`]
//! — this is a small hand-rolled parser. The format is deliberately
//! minimal and line-oriented so every diagnostic can carry an exact
//! line number:
//!
//! ```text
//! # A comment runs to end of line.
//! schema = 1                      # top-level entries before any section
//! kind = scenario
//! name = noisy-neighbor-duel
//!
//! [tenant]                        # sections repeat; order is meaningful
//! workload = gups
//! rss_pages = 2048
//! weight = 3
//! seed = 2024
//!
//! [event]
//! at = 8ms                        # durations carry ns/us/ms/s suffixes
//! tenant = 0
//! action = depart
//! ```
//!
//! Values are typed at parse time: integers (with `_` separators),
//! finite floats, booleans, bare words, quoted strings, durations
//! (`ns`/`us`/`ms`/`s`), sizes (`B`/`KiB`/`MiB`/`GiB`), bandwidths
//! (`B/s`/`KiB/s`/`MiB/s`/`GiB/s`) and comma-separated lists of any of
//! these. Schema validation (which keys a section accepts, ranges,
//! cross-field constraints) happens in the domain crates through
//! [`FieldReader`], which tracks consumed keys so unknown keys are
//! reported with a near-miss suggestion.
//!
//! [`ConfigDoc::render`] reprints a document canonically (comments
//! dropped, spacing normalised); `parse(render(parse(text)))` is the
//! identity on the document tree, which the property suite pins.

use core::fmt;
use std::fmt::Write as _;

use crate::suggest;

/// A parse or validation failure with the line it occurred on.
///
/// `line` is 1-based; 0 means the failure concerns the document as a
/// whole (e.g. a missing required section).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line of the failure; 0 = whole document.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl ConfigError {
    /// Creates an error pinned to `line`.
    pub fn at(line: usize, msg: impl Into<String>) -> Self {
        Self { line, msg: msg.into() }
    }

    /// Creates a whole-document error (no meaningful line).
    pub fn whole(msg: impl Into<String>) -> Self {
        Self { line: 0, msg: msg.into() }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for ConfigError {}

/// A typed configuration value.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigValue {
    /// A non-negative integer (`42`, `1_000_000`).
    Int(u64),
    /// A finite float (`0.75`, `1e3`). Non-finite values are rejected
    /// at parse time so rendering always round-trips.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// A bare word or quoted string.
    Str(String),
    /// A duration in nanoseconds (`118ns`, `100us`, `8ms`, `2s`).
    Duration(u64),
    /// A size in bytes (`64B`, `8KiB`, `512KiB`, `8MiB`, `1GiB`).
    Size(u64),
    /// A bandwidth in bytes per second (`30GiB/s`, `256MiB/s`).
    Rate(f64),
    /// A comma-separated list of scalar values.
    List(Vec<ConfigValue>),
}

impl ConfigValue {
    /// The type name used in diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            ConfigValue::Int(_) => "integer",
            ConfigValue::Float(_) => "float",
            ConfigValue::Bool(_) => "boolean",
            ConfigValue::Str(_) => "string",
            ConfigValue::Duration(_) => "duration",
            ConfigValue::Size(_) => "size",
            ConfigValue::Rate(_) => "bandwidth",
            ConfigValue::List(_) => "list",
        }
    }

    /// Canonical rendering (what [`ConfigDoc::render`] emits).
    fn render(&self, out: &mut String) {
        match self {
            ConfigValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            ConfigValue::Float(v) => {
                // `{:?}` is the shortest round-tripping form and keeps
                // a `.0` on integral floats (so it re-parses as Float).
                let _ = write!(out, "{v:?}");
            }
            ConfigValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            ConfigValue::Str(s) => {
                if is_bare_word(s) {
                    out.push_str(s);
                } else {
                    render_quoted(s, out);
                }
            }
            ConfigValue::Duration(ns) => {
                // Largest unit that divides exactly, so values re-parse
                // to the same nanosecond count.
                let (value, unit) = if *ns != 0 && ns.is_multiple_of(1_000_000_000) {
                    (ns / 1_000_000_000, "s")
                } else if *ns != 0 && ns.is_multiple_of(1_000_000) {
                    (ns / 1_000_000, "ms")
                } else if *ns != 0 && ns.is_multiple_of(1_000) {
                    (ns / 1_000, "us")
                } else {
                    (*ns, "ns")
                };
                let _ = write!(out, "{value}{unit}");
            }
            ConfigValue::Size(bytes) => {
                let (value, unit) = if *bytes != 0 && bytes.is_multiple_of(1 << 30) {
                    (bytes >> 30, "GiB")
                } else if *bytes != 0 && bytes.is_multiple_of(1 << 20) {
                    (bytes >> 20, "MiB")
                } else if *bytes != 0 && bytes.is_multiple_of(1 << 10) {
                    (bytes >> 10, "KiB")
                } else {
                    (*bytes, "B")
                };
                let _ = write!(out, "{value}{unit}");
            }
            ConfigValue::Rate(bytes_per_sec) => {
                // Emit in B/s with the round-tripping float form; the
                // parser multiplies suffixes back out exactly.
                let _ = write!(out, "{bytes_per_sec:?}B/s");
            }
            ConfigValue::List(items) => {
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.render(out);
                }
            }
        }
    }
}

/// One `key = value` line of a section.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigEntry {
    /// The key (an identifier).
    pub key: String,
    /// The typed value.
    pub value: ConfigValue,
    /// 1-based source line.
    pub line: usize,
}

/// One `[name]` section and its entries. Sections with the same name
/// may repeat (`[tenant]`, `[event]`, ...); order is meaningful.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigSection {
    /// The section name (empty for the implicit top-level section).
    pub name: String,
    /// 1-based line of the `[name]` header (0 for the top level).
    pub line: usize,
    /// Entries in source order.
    pub entries: Vec<ConfigEntry>,
}

impl ConfigSection {
    /// Looks up the first entry with `key`.
    pub fn get(&self, key: &str) -> Option<&ConfigEntry> {
        self.entries.iter().find(|e| e.key == key)
    }

    /// The section's display label for diagnostics: `[tenant]`, or
    /// `top level` for the root.
    pub fn label(&self) -> String {
        if self.name.is_empty() {
            "top level".to_string()
        } else {
            format!("[{}]", self.name)
        }
    }
}

/// A parsed configuration document: the implicit top-level section
/// plus every `[section]` in source order.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigDoc {
    /// Entries before the first `[section]` header.
    pub root: ConfigSection,
    /// The `[section]` blocks, in source order.
    pub sections: Vec<ConfigSection>,
}

impl ConfigDoc {
    /// Parses a document.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] with a 1-based line number on the
    /// first malformed line: bad section headers, missing `=`, invalid
    /// values, duplicate keys within a section.
    pub fn parse(input: &str) -> Result<ConfigDoc, ConfigError> {
        let mut doc = ConfigDoc {
            root: ConfigSection { name: String::new(), line: 0, entries: Vec::new() },
            sections: Vec::new(),
        };
        for (i, raw_line) in input.lines().enumerate() {
            let line_no = i + 1;
            let line = strip_comment(raw_line);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(ConfigError::at(line_no, "section header is missing ']'"));
                };
                let name = name.trim();
                if !is_identifier(name) {
                    return Err(ConfigError::at(
                        line_no,
                        format!("invalid section name {name:?} (want letters, digits, '_', '-')"),
                    ));
                }
                doc.sections.push(ConfigSection {
                    name: name.to_string(),
                    line: line_no,
                    entries: Vec::new(),
                });
                continue;
            }
            let Some((key, value_text)) = line.split_once('=') else {
                return Err(ConfigError::at(
                    line_no,
                    format!("expected `key = value` or `[section]`, found {line:?}"),
                ));
            };
            let key = key.trim();
            if !is_identifier(key) {
                return Err(ConfigError::at(
                    line_no,
                    format!("invalid key {key:?} (want letters, digits, '_', '-')"),
                ));
            }
            let value = parse_value(value_text.trim(), line_no)?;
            let section = doc.sections.last_mut().unwrap_or(&mut doc.root);
            if let Some(prev) = section.entries.iter().find(|e| e.key == key) {
                return Err(ConfigError::at(
                    line_no,
                    format!(
                        "duplicate key {key:?} in {} (first set on line {})",
                        section.label(),
                        prev.line
                    ),
                ));
            }
            section.entries.push(ConfigEntry { key: key.to_string(), value, line: line_no });
        }
        Ok(doc)
    }

    /// Every section named `name`, in source order.
    pub fn sections_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a ConfigSection> {
        self.sections.iter().filter(move |s| s.name == name)
    }

    /// Canonical rendering: comments dropped, spacing normalised, one
    /// blank line before each section header. Re-parsing the output
    /// yields an equal document (up to entry line numbers — compare
    /// with [`ConfigDoc::structural_eq`]).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for entry in &self.root.entries {
            let _ = write!(out, "{} = ", entry.key);
            entry.value.render(&mut out);
            out.push('\n');
        }
        for section in &self.sections {
            if !out.is_empty() {
                out.push('\n');
            }
            let _ = writeln!(out, "[{}]", section.name);
            for entry in &section.entries {
                let _ = write!(out, "{} = ", entry.key);
                entry.value.render(&mut out);
                out.push('\n');
            }
        }
        out
    }

    /// Structural equality: same sections, keys and values, ignoring
    /// source line numbers — the equivalence [`ConfigDoc::render`]
    /// round-trips under.
    pub fn structural_eq(&self, other: &ConfigDoc) -> bool {
        fn section_eq(a: &ConfigSection, b: &ConfigSection) -> bool {
            a.name == b.name
                && a.entries.len() == b.entries.len()
                && a.entries
                    .iter()
                    .zip(&b.entries)
                    .all(|(x, y)| x.key == y.key && x.value == y.value)
        }
        section_eq(&self.root, &other.root)
            && self.sections.len() == other.sections.len()
            && self.sections.iter().zip(&other.sections).all(|(a, b)| section_eq(a, b))
    }
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// `true` for `[A-Za-z0-9_-]+` starting with a letter or digit.
fn is_identifier(s: &str) -> bool {
    !s.is_empty()
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        && s.starts_with(|c: char| c.is_ascii_alphanumeric())
}

/// `true` when a string renders unquoted without ambiguity: a bare
/// word that the value parser maps straight back to `Str`.
fn is_bare_word(s: &str) -> bool {
    if s.is_empty()
        || !s.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':' | '/'))
    {
        return false;
    }
    // Anything the scalar parser wouldn't map straight back to `Str`
    // (a number, a unit-suffixed value, a parse error) must be quoted.
    matches!(parse_scalar(s, 0), Ok(ConfigValue::Str(_)))
}

fn render_quoted(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Splits a value text on top-level commas (outside quotes).
fn split_list(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in text.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            ',' if !in_string => {
                parts.push(text[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
        escaped = false;
    }
    parts.push(text[start..].trim());
    parts
}

fn parse_value(text: &str, line: usize) -> Result<ConfigValue, ConfigError> {
    if text.is_empty() {
        return Err(ConfigError::at(line, "missing value after `=`"));
    }
    let parts = split_list(text);
    if parts.len() == 1 {
        return parse_scalar(parts[0], line);
    }
    let items = parts
        .into_iter()
        .map(|part| {
            if part.is_empty() {
                Err(ConfigError::at(line, "empty element in list value"))
            } else {
                parse_scalar(part, line)
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ConfigValue::List(items))
}

/// Unit suffixes, longest first so `MiB/s` wins over `MiB` and `B`.
/// Multipliers are exact for the integer forms.
const DURATION_UNITS: [(&str, u64); 4] =
    [("ns", 1), ("us", 1_000), ("ms", 1_000_000), ("s", 1_000_000_000)];
const SIZE_UNITS: [(&str, u64); 4] = [("KiB", 1 << 10), ("MiB", 1 << 20), ("GiB", 1 << 30), ("B", 1)];
const RATE_UNITS: [(&str, f64); 4] = [
    ("KiB/s", 1024.0),
    ("MiB/s", 1024.0 * 1024.0),
    ("GiB/s", 1024.0 * 1024.0 * 1024.0),
    ("B/s", 1.0),
];

fn parse_scalar(text: &str, line: usize) -> Result<ConfigValue, ConfigError> {
    debug_assert!(!text.is_empty());
    if let Some(quoted) = text.strip_prefix('"') {
        return parse_quoted(quoted, line);
    }
    match text {
        "true" => return Ok(ConfigValue::Bool(true)),
        "false" => return Ok(ConfigValue::Bool(false)),
        _ => {}
    }
    // Numeric-looking values (with or without a unit suffix) start with
    // a digit; everything else is a bare word.
    if !text.starts_with(|c: char| c.is_ascii_digit()) {
        if text.chars().all(|c| {
            c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':' | '/')
        }) {
            return Ok(ConfigValue::Str(text.to_string()));
        }
        return Err(ConfigError::at(
            line,
            format!("invalid value {text:?} (quote strings containing punctuation)"),
        ));
    }
    // Unit suffixes: bandwidth first (contains '/'), then size, then
    // duration ("s" last so it never shadows "ns"/"us"/"ms").
    for (unit, mult) in RATE_UNITS {
        if let Some(number) = text.strip_suffix(unit) {
            let v = parse_number(number.trim_end(), line, text)?;
            return Ok(ConfigValue::Rate(number_as_f64(&v) * mult));
        }
    }
    for (unit, mult) in SIZE_UNITS {
        if let Some(number) = text.strip_suffix(unit) {
            let v = parse_number(number.trim_end(), line, text)?;
            return match v {
                ConfigValue::Int(n) => n
                    .checked_mul(mult)
                    .map(ConfigValue::Size)
                    .ok_or_else(|| ConfigError::at(line, format!("size {text:?} overflows"))),
                _ => Err(ConfigError::at(line, format!("size {text:?} must be an integer"))),
            };
        }
    }
    for (unit, mult) in DURATION_UNITS {
        if let Some(number) = text.strip_suffix(unit) {
            let v = parse_number(number.trim_end(), line, text)?;
            return match v {
                ConfigValue::Int(n) => n.checked_mul(mult).map(ConfigValue::Duration).ok_or_else(
                    || ConfigError::at(line, format!("duration {text:?} overflows")),
                ),
                _ => {
                    Err(ConfigError::at(line, format!("duration {text:?} must be an integer")))
                }
            };
        }
    }
    parse_number(text, line, text)
}

fn parse_quoted(rest: &str, line: usize) -> Result<ConfigValue, ConfigError> {
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next() {
            None => return Err(ConfigError::at(line, "unterminated string")),
            Some('"') => break,
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                other => {
                    return Err(ConfigError::at(
                        line,
                        format!(
                            "invalid escape \\{} in string (only \\\" and \\\\ are supported)",
                            other.map(String::from).unwrap_or_default()
                        ),
                    ))
                }
            },
            Some(c) => out.push(c),
        }
    }
    let trailing: String = chars.collect();
    if !trailing.trim().is_empty() {
        return Err(ConfigError::at(
            line,
            format!("unexpected {:?} after closing quote", trailing.trim()),
        ));
    }
    Ok(ConfigValue::Str(out))
}

/// Parses a bare number: `u64` (with `_` separators) or finite `f64`.
/// `original` is the full token, for diagnostics on suffixed values.
fn parse_number(text: &str, line: usize, original: &str) -> Result<ConfigValue, ConfigError> {
    let bad = || ConfigError::at(line, format!("invalid number {original:?}"));
    if text.is_empty() {
        return Err(bad());
    }
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    if cleaned.chars().all(|c| c.is_ascii_digit()) {
        return cleaned.parse::<u64>().map(ConfigValue::Int).map_err(|_| bad());
    }
    let value: f64 = cleaned.parse().map_err(|_| bad())?;
    if !value.is_finite() {
        return Err(ConfigError::at(line, format!("non-finite number {original:?}")));
    }
    Ok(ConfigValue::Float(value))
}

fn number_as_f64(v: &ConfigValue) -> f64 {
    match v {
        ConfigValue::Int(n) => *n as f64,
        ConfigValue::Float(f) => *f,
        _ => unreachable!("parse_number returns Int or Float"),
    }
}

/// A strict schema reader over one [`ConfigSection`].
///
/// Domain crates consume a section through `take_*` accessors and then
/// call [`FieldReader::finish`], which rejects any key that was never
/// requested — with a near-miss suggestion against the requested key
/// set. That makes "unknown key" diagnostics automatic and uniform:
///
/// ```
/// use neomem_types::config::{ConfigDoc, FieldReader};
///
/// let doc = ConfigDoc::parse("[tenant]\nworkload = gups\nwieght = 2\n").unwrap();
/// let section = &doc.sections[0];
/// let mut r = FieldReader::new(section);
/// let _ = r.take_str("workload");
/// let _ = r.take_u64("weight");
/// let err = r.finish().unwrap_err();
/// assert_eq!(
///     err.to_string(),
///     "line 3: unknown key \"wieght\" in [tenant] (did you mean \"weight\"?)"
/// );
/// ```
#[derive(Debug)]
pub struct FieldReader<'a> {
    section: &'a ConfigSection,
    taken: Vec<bool>,
    known: Vec<&'static str>,
}

impl<'a> FieldReader<'a> {
    /// Starts reading `section`.
    pub fn new(section: &'a ConfigSection) -> Self {
        Self { section, taken: vec![false; section.entries.len()], known: Vec::new() }
    }

    /// The section under read.
    pub fn section(&self) -> &'a ConfigSection {
        self.section
    }

    /// The 1-based line of `key` in this section, falling back to the
    /// section header line — error-reporting helper for cross-field
    /// checks done after the reader finished.
    pub fn line_of(&self, key: &str) -> usize {
        self.section.get(key).map_or(self.section.line, |e| e.line)
    }

    fn err(&self, line: usize, msg: impl fmt::Display) -> ConfigError {
        ConfigError::at(line, format!("{msg} in {}", self.section.label()))
    }

    /// Marks `key` as known and returns its entry, if present.
    pub fn take(&mut self, key: &'static str) -> Option<&'a ConfigEntry> {
        if !self.known.contains(&key) {
            self.known.push(key);
        }
        let (i, entry) =
            self.section.entries.iter().enumerate().find(|(_, e)| e.key == key)?;
        self.taken[i] = true;
        Some(entry)
    }

    /// Requires `key` to be present.
    ///
    /// # Errors
    ///
    /// Fails with a section-labelled message when the key is missing.
    pub fn req(&mut self, key: &'static str) -> Result<&'a ConfigEntry, ConfigError> {
        self.take(key).ok_or_else(|| {
            ConfigError::at(
                self.section.line,
                format!("missing required key {key:?} in {}", self.section.label()),
            )
        })
    }

    /// Optional string value.
    ///
    /// # Errors
    ///
    /// Fails when the key is present but not a string.
    pub fn take_str(&mut self, key: &'static str) -> Result<Option<String>, ConfigError> {
        match self.take(key) {
            None => Ok(None),
            Some(entry) => match &entry.value {
                ConfigValue::Str(s) => Ok(Some(s.clone())),
                other => Err(self.err(
                    entry.line,
                    format!("key {key:?} wants a string, found {}", other.type_name()),
                )),
            },
        }
    }

    /// Required string value.
    ///
    /// # Errors
    ///
    /// Fails when the key is missing or not a string.
    pub fn req_str(&mut self, key: &'static str) -> Result<String, ConfigError> {
        let entry = self.req(key)?;
        match &entry.value {
            ConfigValue::Str(s) => Ok(s.clone()),
            other => Err(self.err(
                entry.line,
                format!("key {key:?} wants a string, found {}", other.type_name()),
            )),
        }
    }

    /// Optional integer value.
    ///
    /// # Errors
    ///
    /// Fails when the key is present but not an integer.
    pub fn take_u64(&mut self, key: &'static str) -> Result<Option<u64>, ConfigError> {
        match self.take(key) {
            None => Ok(None),
            Some(entry) => match entry.value {
                ConfigValue::Int(v) => Ok(Some(v)),
                ref other => Err(self.err(
                    entry.line,
                    format!("key {key:?} wants an integer, found {}", other.type_name()),
                )),
            },
        }
    }

    /// Required integer value.
    ///
    /// # Errors
    ///
    /// Fails when the key is missing or not an integer.
    pub fn req_u64(&mut self, key: &'static str) -> Result<u64, ConfigError> {
        let entry = self.req(key)?;
        match entry.value {
            ConfigValue::Int(v) => Ok(v),
            ref other => Err(self.err(
                entry.line,
                format!("key {key:?} wants an integer, found {}", other.type_name()),
            )),
        }
    }

    /// Required integer within `[min, max]`.
    ///
    /// # Errors
    ///
    /// Fails when missing, mistyped or out of range (the message names
    /// the accepted range).
    pub fn req_u64_range(
        &mut self,
        key: &'static str,
        min: u64,
        max: u64,
    ) -> Result<u64, ConfigError> {
        let line = self.line_of(key);
        let v = self.req_u64(key)?;
        self.check_range(key, v, min, max, line)?;
        Ok(v)
    }

    /// Optional integer within `[min, max]`.
    ///
    /// # Errors
    ///
    /// Fails when present but mistyped or out of range.
    pub fn take_u64_range(
        &mut self,
        key: &'static str,
        min: u64,
        max: u64,
    ) -> Result<Option<u64>, ConfigError> {
        let line = self.line_of(key);
        match self.take_u64(key)? {
            None => Ok(None),
            Some(v) => {
                self.check_range(key, v, min, max, line)?;
                Ok(Some(v))
            }
        }
    }

    fn check_range(
        &self,
        key: &'static str,
        v: u64,
        min: u64,
        max: u64,
        line: usize,
    ) -> Result<(), ConfigError> {
        if v < min || v > max {
            let range = if max == u64::MAX {
                format!("at least {min}")
            } else {
                format!("{min}..={max}")
            };
            return Err(self.err(line, format!("key {key:?} is {v}, want {range}")));
        }
        Ok(())
    }

    /// Optional float (integers widen).
    ///
    /// # Errors
    ///
    /// Fails when the key is present but not numeric.
    pub fn take_f64(&mut self, key: &'static str) -> Result<Option<f64>, ConfigError> {
        match self.take(key) {
            None => Ok(None),
            Some(entry) => match entry.value {
                ConfigValue::Float(v) => Ok(Some(v)),
                ConfigValue::Int(v) => Ok(Some(v as f64)),
                ref other => Err(self.err(
                    entry.line,
                    format!("key {key:?} wants a number, found {}", other.type_name()),
                )),
            },
        }
    }

    /// Optional boolean.
    ///
    /// # Errors
    ///
    /// Fails when the key is present but not a boolean.
    pub fn take_bool(&mut self, key: &'static str) -> Result<Option<bool>, ConfigError> {
        match self.take(key) {
            None => Ok(None),
            Some(entry) => match entry.value {
                ConfigValue::Bool(v) => Ok(Some(v)),
                ref other => Err(self.err(
                    entry.line,
                    format!("key {key:?} wants a boolean, found {}", other.type_name()),
                )),
            },
        }
    }

    /// Optional duration in nanoseconds (requires a unit suffix).
    ///
    /// # Errors
    ///
    /// Fails when the key is present but not a duration.
    pub fn take_duration_ns(&mut self, key: &'static str) -> Result<Option<u64>, ConfigError> {
        match self.take(key) {
            None => Ok(None),
            Some(entry) => match entry.value {
                ConfigValue::Duration(ns) => Ok(Some(ns)),
                ref other => Err(self.err(
                    entry.line,
                    format!(
                        "key {key:?} wants a duration (e.g. 8ms, 118ns), found {}",
                        other.type_name()
                    ),
                )),
            },
        }
    }

    /// Required duration in nanoseconds.
    ///
    /// # Errors
    ///
    /// Fails when the key is missing or not a duration.
    pub fn req_duration_ns(&mut self, key: &'static str) -> Result<u64, ConfigError> {
        let line = self.line_of(key);
        self.req(key)?;
        // Re-take to reuse the typed accessor's message.
        self.take_duration_ns(key)?
            .ok_or_else(|| self.err(line, format!("missing required key {key:?}")))
    }

    /// Optional size in bytes (requires a unit suffix).
    ///
    /// # Errors
    ///
    /// Fails when the key is present but not a size.
    pub fn take_size_bytes(&mut self, key: &'static str) -> Result<Option<u64>, ConfigError> {
        match self.take(key) {
            None => Ok(None),
            Some(entry) => match entry.value {
                ConfigValue::Size(bytes) => Ok(Some(bytes)),
                ref other => Err(self.err(
                    entry.line,
                    format!(
                        "key {key:?} wants a size (e.g. 8KiB, 512KiB), found {}",
                        other.type_name()
                    ),
                )),
            },
        }
    }

    /// Optional bandwidth in bytes per second (requires a `/s` suffix).
    ///
    /// # Errors
    ///
    /// Fails when the key is present but not a bandwidth.
    pub fn take_rate(&mut self, key: &'static str) -> Result<Option<f64>, ConfigError> {
        match self.take(key) {
            None => Ok(None),
            Some(entry) => match entry.value {
                ConfigValue::Rate(bps) => Ok(Some(bps)),
                ref other => Err(self.err(
                    entry.line,
                    format!(
                        "key {key:?} wants a bandwidth (e.g. 30GiB/s), found {}",
                        other.type_name()
                    ),
                )),
            },
        }
    }

    /// Rejects every entry that no `take_*`/`req_*` call asked for,
    /// suggesting the closest requested key.
    ///
    /// # Errors
    ///
    /// Fails on the first unknown key, in source order.
    pub fn finish(self) -> Result<(), ConfigError> {
        for (entry, taken) in self.section.entries.iter().zip(&self.taken) {
            if *taken {
                continue;
            }
            let hint = suggest::closest(&entry.key, self.known.iter().copied())
                .map(|k| format!(" (did you mean {k:?}?)"))
                .unwrap_or_default();
            return Err(ConfigError::at(
                entry.line,
                format!("unknown key {:?} in {}{hint}", entry.key, self.section.label()),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_entries_and_comments() {
        let doc = ConfigDoc::parse(
            "# header comment\nschema = 1\nname = web-burst # trailing\n\n[tenant]\nworkload = gups\nrss_pages = 2_048\n\n[tenant]\nworkload = silo\ntitle = \"quoted # not a comment\"\n",
        )
        .unwrap();
        assert_eq!(doc.root.entries.len(), 2);
        assert_eq!(doc.root.get("schema").unwrap().value, ConfigValue::Int(1));
        assert_eq!(
            doc.root.get("name").unwrap().value,
            ConfigValue::Str("web-burst".into())
        );
        assert_eq!(doc.sections.len(), 2);
        assert_eq!(doc.sections_named("tenant").count(), 2);
        assert_eq!(doc.sections[0].get("rss_pages").unwrap().value, ConfigValue::Int(2048));
        assert_eq!(
            doc.sections[1].get("title").unwrap().value,
            ConfigValue::Str("quoted # not a comment".into())
        );
        assert_eq!(doc.sections[1].get("workload").unwrap().line, 10);
    }

    #[test]
    fn value_types_cover_units() {
        let doc = ConfigDoc::parse(
            "i = 42\nf = 0.75\nb = true\ns = gups\nq = \"a b\"\nd = 8ms\nd2 = 118ns\nsz = 512KiB\nr = 30GiB/s\nl = 1, 2, 4\nmixed = gups, 8ms\n",
        )
        .unwrap();
        let get = |k: &str| doc.root.get(k).unwrap().value.clone();
        assert_eq!(get("i"), ConfigValue::Int(42));
        assert_eq!(get("f"), ConfigValue::Float(0.75));
        assert_eq!(get("b"), ConfigValue::Bool(true));
        assert_eq!(get("s"), ConfigValue::Str("gups".into()));
        assert_eq!(get("q"), ConfigValue::Str("a b".into()));
        assert_eq!(get("d"), ConfigValue::Duration(8_000_000));
        assert_eq!(get("d2"), ConfigValue::Duration(118));
        assert_eq!(get("sz"), ConfigValue::Size(512 << 10));
        assert_eq!(get("r"), ConfigValue::Rate(30.0 * 1024.0 * 1024.0 * 1024.0));
        assert_eq!(
            get("l"),
            ConfigValue::List(vec![
                ConfigValue::Int(1),
                ConfigValue::Int(2),
                ConfigValue::Int(4)
            ])
        );
        assert_eq!(
            get("mixed"),
            ConfigValue::List(vec![
                ConfigValue::Str("gups".into()),
                ConfigValue::Duration(8_000_000)
            ])
        );
    }

    #[test]
    fn diagnostics_carry_line_numbers() {
        let err = |text: &str| ConfigDoc::parse(text).unwrap_err();
        assert_eq!(err("[tenant\n").to_string(), "line 1: section header is missing ']'");
        assert_eq!(
            err("a = 1\nb 2\n").to_string(),
            "line 2: expected `key = value` or `[section]`, found \"b 2\""
        );
        assert_eq!(err("a = 1\na = 2\n").line, 2);
        assert!(err("a = 1\na = 2\n").to_string().contains("duplicate key"));
        assert_eq!(err("x = \n").to_string(), "line 1: missing value after `=`");
        assert_eq!(err("x = 1e999\n").to_string(), "line 1: non-finite number \"1e999\"");
        assert_eq!(err("x = 12qq\n").to_string(), "line 1: invalid number \"12qq\"");
        assert_eq!(err("x = \"abc\n").to_string(), "line 1: unterminated string");
        assert_eq!(err("x = 4.5KiB\n").to_string(), "line 1: size \"4.5KiB\" must be an integer");
        assert!(err("[ten ant]\n").to_string().contains("invalid section name"));
    }

    #[test]
    fn render_round_trips_structurally() {
        let text = "schema = 1\nname = duel\nratio = 0.5\n\n[tenant]\nworkload = gups\nrss_pages = 2048\nburst = 8ms\nbw = 12GiB/s\nl1 = 8KiB\nlist = a, 1, 2us\ntitle = \"a # b\"\n";
        let doc = ConfigDoc::parse(text).unwrap();
        let rendered = doc.render();
        let reparsed = ConfigDoc::parse(&rendered).unwrap();
        assert!(doc.structural_eq(&reparsed), "{rendered}");
        // Rendering is a fixed point.
        assert_eq!(reparsed.render(), rendered);
    }

    #[test]
    fn duration_and_size_render_in_largest_exact_unit() {
        let mut out = String::new();
        ConfigValue::Duration(8_000_000).render(&mut out);
        assert_eq!(out, "8ms");
        out.clear();
        ConfigValue::Duration(1_500).render(&mut out);
        assert_eq!(out, "1500ns");
        out.clear();
        ConfigValue::Size(512 << 10).render(&mut out);
        assert_eq!(out, "512KiB");
        out.clear();
        ConfigValue::Size(100).render(&mut out);
        assert_eq!(out, "100B");
        out.clear();
        ConfigValue::Rate(1024.0).render(&mut out);
        assert_eq!(out, "1024.0B/s");
    }

    #[test]
    fn field_reader_types_ranges_and_unknown_keys() {
        let doc = ConfigDoc::parse(
            "[m]\nwidth = 512\ndepth = 9\nlat = 8ms\ncap = 8KiB\nbw = 1GiB/s\nflag = true\nfrac = 0.5\n",
        )
        .unwrap();
        let mut r = FieldReader::new(&doc.sections[0]);
        assert_eq!(r.req_u64("width").unwrap(), 512);
        let err = r.req_u64_range("depth", 1, 4).unwrap_err();
        assert_eq!(err.to_string(), "line 3: key \"depth\" is 9, want 1..=4 in [m]");
        assert_eq!(r.take_duration_ns("lat").unwrap(), Some(8_000_000));
        assert_eq!(r.take_size_bytes("cap").unwrap(), Some(8 << 10));
        assert_eq!(r.take_rate("bw").unwrap(), Some(1024.0 * 1024.0 * 1024.0));
        assert_eq!(r.take_bool("flag").unwrap(), Some(true));
        assert_eq!(r.take_f64("frac").unwrap(), Some(0.5));
        assert!(r.finish().is_ok());

        // Type mismatch names both the wanted and found types.
        let doc = ConfigDoc::parse("[m]\nwidth = fast\n").unwrap();
        let mut r = FieldReader::new(&doc.sections[0]);
        let err = r.req_u64("width").unwrap_err();
        assert_eq!(
            err.to_string(),
            "line 2: key \"width\" wants an integer, found string in [m]"
        );

        // Missing required key points at the section header.
        let doc = ConfigDoc::parse("[tenant]\nseed = 1\n").unwrap();
        let mut r = FieldReader::new(&doc.sections[0]);
        let err = r.req_str("workload").unwrap_err();
        assert_eq!(
            err.to_string(),
            "line 1: missing required key \"workload\" in [tenant]"
        );
    }

    #[test]
    fn never_panics_on_junk() {
        for junk in [
            "[", "]", "=", "==", "\"", "\\", "[a]b", "a=\"\\x\"", "a==b", "1 = 2", "-a = 1",
            "a = 1,,2", "a = ,", "π = 3", "a = π", "a = 1__0", "a = 9999999999999999999999",
            "a = 10000000GiB", "a = \"x\" y",
        ] {
            let _ = ConfigDoc::parse(junk);
        }
        assert_eq!(
            ConfigDoc::parse("a = 1__0\n").unwrap().root.get("a").unwrap().value,
            ConfigValue::Int(10)
        );
        assert!(ConfigDoc::parse("a = 9999999999999999999999\n").is_err());
        assert!(ConfigDoc::parse("a = 100000000000GiB\n").is_err(), "size overflow");
    }
}
