//! Address and page-number newtypes.

use core::fmt;

/// Log2 of the base page size (4 KiB pages, as in the paper).
pub const PAGE_SHIFT: u32 = 12;
/// Base page size in bytes (4 KiB).
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;
/// Log2 of the cache-line size (64-byte lines).
pub const LINE_SHIFT: u32 = 6;
/// Cache-line size in bytes.
pub const LINE_SIZE: u64 = 1 << LINE_SHIFT;
/// Number of cache lines in one base page.
pub const LINES_PER_PAGE: u64 = PAGE_SIZE / LINE_SIZE;

/// A byte-granularity physical address in the host physical address space.
///
/// ```
/// use neomem_types::{PhysAddr, PAGE_SIZE};
/// let a = PhysAddr::new(3 * PAGE_SIZE + 17);
/// assert_eq!(a.page().index(), 3);
/// assert_eq!(a.page_offset(), 17);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from a raw byte address.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw byte address.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the physical page (frame) containing this address.
    #[inline]
    pub const fn page(self) -> PageNum {
        PageNum(self.0 >> PAGE_SHIFT)
    }

    /// Returns the cache line containing this address.
    #[inline]
    pub const fn line(self) -> CacheLine {
        CacheLine(self.0 >> LINE_SHIFT)
    }

    /// Returns the byte offset within the containing page.
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PA:{:#x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<PhysAddr> for u64 {
    fn from(value: PhysAddr) -> Self {
        value.0
    }
}

/// A physical page frame number (host physical address space, 4 KiB units).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageNum(u64);

impl PageNum {
    /// Creates a frame number from a raw page index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        Self(index)
    }

    /// Returns the raw page index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte of this page.
    #[inline]
    pub const fn base_addr(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }

    /// Returns the frame number offset by `delta` pages.
    #[inline]
    pub const fn offset(self, delta: u64) -> Self {
        Self(self.0 + delta)
    }
}

impl fmt::Display for PageNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PFN:{}", self.0)
    }
}

impl From<PageNum> for u64 {
    fn from(value: PageNum) -> Self {
        value.0
    }
}

/// A virtual page number within one simulated process address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtPage(u64);

impl VirtPage {
    /// Creates a virtual page number from a raw page index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        Self(index)
    }

    /// Returns the raw page index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the virtual page offset by `delta` pages.
    #[inline]
    pub const fn offset(self, delta: u64) -> Self {
        Self(self.0 + delta)
    }
}

impl fmt::Display for VirtPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VPN:{}", self.0)
    }
}

impl From<VirtPage> for u64 {
    fn from(value: VirtPage) -> Self {
        value.0
    }
}

/// A cache-line address (byte address divided by the 64-byte line size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CacheLine(u64);

impl CacheLine {
    /// Creates a cache-line address from a raw line index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        Self(index)
    }

    /// Returns the raw line index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the physical page containing this line.
    #[inline]
    pub const fn page(self) -> PageNum {
        PageNum(self.0 >> (PAGE_SHIFT - LINE_SHIFT))
    }

    /// Builds the line address for line `line_in_page` of page `page`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `line_in_page >= LINES_PER_PAGE`.
    #[inline]
    pub fn of_page(page: PageNum, line_in_page: u64) -> Self {
        debug_assert!(line_in_page < super::LINES_PER_PAGE);
        Self((page.index() << (PAGE_SHIFT - LINE_SHIFT)) | line_in_page)
    }
}

impl fmt::Display for CacheLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Line:{:#x}", self.0)
    }
}

/// A page index local to one CXL device's memory region.
///
/// NeoProf hardware observes *device* addresses; the kernel driver
/// translates them back to host [`PageNum`]s by adding the device's base
/// frame. Keeping the two types distinct prevents mixing the spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DevicePage(u64);

impl DevicePage {
    /// Creates a device-local page index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        Self(index)
    }

    /// Returns the raw device-local page index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Translates a host frame into a device page given the device base frame.
    ///
    /// Returns `None` when `frame` lies below the device window.
    #[inline]
    pub fn from_host(frame: PageNum, device_base: PageNum) -> Option<Self> {
        frame.index().checked_sub(device_base.index()).map(Self)
    }

    /// Translates this device page back into a host frame.
    #[inline]
    pub const fn to_host(self, device_base: PageNum) -> PageNum {
        PageNum(self.0 + device_base.index())
    }
}

impl fmt::Display for DevicePage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DevPage:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phys_addr_page_round_trip() {
        let a = PhysAddr::new(7 * PAGE_SIZE + 123);
        assert_eq!(a.page(), PageNum::new(7));
        assert_eq!(a.page_offset(), 123);
        assert_eq!(a.page().base_addr(), PhysAddr::new(7 * PAGE_SIZE));
    }

    #[test]
    fn line_of_page_round_trip() {
        let page = PageNum::new(42);
        for lip in [0, 1, 17, LINES_PER_PAGE - 1] {
            let line = CacheLine::of_page(page, lip);
            assert_eq!(line.page(), page, "line {lip} must map back to its page");
        }
    }

    #[test]
    fn lines_per_page_is_64() {
        assert_eq!(LINES_PER_PAGE, 64);
        assert_eq!(PAGE_SIZE, 4096);
        assert_eq!(LINE_SIZE, 64);
    }

    #[test]
    fn device_page_translation() {
        let base = PageNum::new(1000);
        let host = PageNum::new(1234);
        let dev = DevicePage::from_host(host, base).expect("in window");
        assert_eq!(dev.index(), 234);
        assert_eq!(dev.to_host(base), host);
        assert_eq!(DevicePage::from_host(PageNum::new(999), base), None);
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert!(!format!("{}", PhysAddr::new(0)).is_empty());
        assert!(!format!("{}", PageNum::new(0)).is_empty());
        assert!(!format!("{}", VirtPage::new(0)).is_empty());
        assert!(!format!("{}", CacheLine::new(0)).is_empty());
        assert!(!format!("{}", DevicePage::new(0)).is_empty());
    }

    #[test]
    fn orderings_follow_indices() {
        assert!(PageNum::new(1) < PageNum::new(2));
        assert!(VirtPage::new(5) > VirtPage::new(3));
        assert!(PhysAddr::new(10) < PhysAddr::new(11));
    }
}
