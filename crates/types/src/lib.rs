//! Shared domain types for the NeoMem CXL memory-tiering reproduction.
//!
//! This crate defines the vocabulary used by every other crate in the
//! workspace: physical/virtual page numbers, cache lines, simulated time,
//! memory tiers, access descriptors, and the common error type.
//!
//! The types are deliberately small newtypes ([`PageNum`], [`VirtPage`],
//! [`Nanos`], ...) so that the compiler statically distinguishes, e.g., a
//! device-local page index from a host physical frame number — a confusion
//! that is easy to make when modelling a CXL device which sees *device*
//! addresses while the kernel reasons about *host* physical addresses.
//!
//! # Example
//!
//! ```
//! use neomem_types::{PhysAddr, PageNum, Nanos, AccessKind};
//!
//! let addr = PhysAddr::new(0x1234_5678);
//! let page = addr.page();
//! assert_eq!(page, PageNum::new(0x12345));
//! assert_eq!(page.base_addr(), PhysAddr::new(0x1234_5000));
//!
//! let t = Nanos::from_micros(3) + Nanos::new(250);
//! assert_eq!(t.as_nanos(), 3_250);
//! assert_eq!(AccessKind::Read.is_read(), true);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod addr;
pub mod config;
mod error;
pub mod fault;
pub mod json;
pub mod suggest;
mod tier;
mod time;

pub use access::{Access, AccessKind, MemRequest};
pub use addr::{CacheLine, DevicePage, PageNum, PhysAddr, VirtPage, LINE_SHIFT, LINE_SIZE, LINES_PER_PAGE, PAGE_SHIFT, PAGE_SIZE};
pub use error::{Error, Result};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultPlanBuilder};
pub use tier::{NodeId, Tier};
pub use time::{Bandwidth, Bytes, Nanos};
