//! Deterministic fault-injection timelines.
//!
//! A [`FaultPlan`] is a validated, time-sorted list of [`FaultEvent`]
//! windows scheduled on the *virtual* clock — the same contract as
//! scenario tenant events — so the engines fire every fault edge at a
//! deterministic simulated time and results stay byte-identical at any
//! thread count or batch size.
//!
//! Three fault classes are modeled:
//!
//! - [`FaultKind::NeoProfOutage`] — the CXL-side profiler device goes
//!   dark: the hot-page FIFO stalls, MMIO commands time out and
//!   sampling drops. Policies that depend on the device fall back to a
//!   degraded profiling mode and re-sync on recovery.
//! - [`FaultKind::LinkDegraded`] — the CXL link browns out: slow-tier
//!   latency is multiplied and bandwidth divided for the window.
//! - [`FaultKind::CapacityLoss`] — a range of fast-tier frames is
//!   hot-removed; resident pages are demoted through the normal
//!   migration path (with retry/backoff when the slow tier is
//!   saturated) and the frames return on recovery.
//!
//! An empty plan is the common case and is guaranteed to be a no-op:
//! engines treat it as "no fault deadline", so every existing result
//! stays bit-identical.

use crate::error::{Error, Result};
use crate::time::Nanos;

/// What kind of hardware misbehaviour a fault window models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// NeoProf device outage: sampling dropout, FIFO stall, MMIO
    /// command timeouts. Profiler-driven policies degrade to a
    /// fallback profiling mode for the window.
    NeoProfOutage,
    /// CXL link degradation: the slow tier's service latency is
    /// multiplied by `latency_x` and its bandwidth divided by
    /// `bandwidth_div` for the window.
    LinkDegraded {
        /// Slow-tier latency multiplier (≥ 1).
        latency_x: u64,
        /// Slow-tier bandwidth divisor (≥ 1).
        bandwidth_div: u64,
    },
    /// Fast-tier capacity loss: `frames` frames are hot-removed from
    /// the top of the fast tier for the window, forcing demotion of
    /// any pages resident in them.
    CapacityLoss {
        /// Number of fast-tier frames removed (≥ 1).
        frames: u64,
    },
}

impl FaultKind {
    /// A short stable label for diagnostics and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::NeoProfOutage => "neoprof-outage",
            FaultKind::LinkDegraded { .. } => "link-degraded",
            FaultKind::CapacityLoss { .. } => "capacity-loss",
        }
    }

    /// Same-class check used by overlap validation: two windows of the
    /// same class may not overlap (their edges would be ambiguous),
    /// while windows of different classes may.
    fn same_class(&self, other: &FaultKind) -> bool {
        self.label() == other.label()
    }
}

/// One fault window on the virtual clock: the fault starts at `at` and
/// recovers at `at + duration`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Virtual time the fault begins.
    pub at: Nanos,
    /// Window length; recovery fires at `at + duration`.
    pub duration: Nanos,
    /// The modeled misbehaviour.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// The virtual time the fault recovers.
    pub fn end(&self) -> Nanos {
        Nanos::new(self.at.as_nanos().saturating_add(self.duration.as_nanos()))
    }
}

/// A validated, time-sorted fault timeline.
///
/// Build one with [`FaultPlan::builder`]; the default/empty plan means
/// "healthy machine" and is guaranteed to leave results bit-identical
/// to a build without fault support.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty (healthy-machine) plan.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Starts a fault-plan builder.
    pub fn builder() -> FaultPlanBuilder {
        FaultPlanBuilder { events: Vec::new(), error: None }
    }

    /// `true` when the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of fault windows.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The fault windows, sorted by start time (ties keep insertion
    /// order).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }
}

/// Chaining builder for [`FaultPlan`], mirroring the scenario builder:
/// invalid inputs are recorded and reported by [`FaultPlanBuilder::build`],
/// so call chains stay infallible.
#[derive(Debug, Clone)]
pub struct FaultPlanBuilder {
    events: Vec<FaultEvent>,
    error: Option<String>,
}

impl FaultPlanBuilder {
    fn fail(&mut self, message: String) {
        if self.error.is_none() {
            self.error = Some(message);
        }
    }

    fn push(mut self, at: Nanos, duration: Nanos, kind: FaultKind) -> Self {
        if duration.is_zero() {
            self.fail(format!(
                "fault {} at {}ns: duration must be non-zero",
                kind.label(),
                at.as_nanos()
            ));
            return self;
        }
        match kind {
            FaultKind::LinkDegraded { latency_x, bandwidth_div } => {
                if latency_x == 0 || bandwidth_div == 0 {
                    self.fail(format!(
                        "fault link-degraded at {}ns: latency_x and bandwidth_div must be >= 1",
                        at.as_nanos()
                    ));
                    return self;
                }
                if latency_x == 1 && bandwidth_div == 1 {
                    self.fail(format!(
                        "fault link-degraded at {}ns: latency_x 1 and bandwidth_div 1 \
                         degrade nothing (want at least one > 1)",
                        at.as_nanos()
                    ));
                    return self;
                }
            }
            FaultKind::CapacityLoss { frames } => {
                if frames == 0 {
                    self.fail(format!(
                        "fault capacity-loss at {}ns: frames must be >= 1",
                        at.as_nanos()
                    ));
                    return self;
                }
            }
            FaultKind::NeoProfOutage => {}
        }
        self.events.push(FaultEvent { at, duration, kind });
        self
    }

    /// Schedules a NeoProf device outage window.
    pub fn outage(self, at: Nanos, duration: Nanos) -> Self {
        self.push(at, duration, FaultKind::NeoProfOutage)
    }

    /// Schedules a CXL link-degradation window.
    pub fn link_degraded(
        self,
        at: Nanos,
        duration: Nanos,
        latency_x: u64,
        bandwidth_div: u64,
    ) -> Self {
        self.push(at, duration, FaultKind::LinkDegraded { latency_x, bandwidth_div })
    }

    /// Schedules a fast-tier capacity-loss window.
    pub fn capacity_loss(self, at: Nanos, duration: Nanos, frames: u64) -> Self {
        self.push(at, duration, FaultKind::CapacityLoss { frames })
    }

    /// Validates and finishes the plan: windows are stable-sorted by
    /// start time and same-class windows may not overlap.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] naming the first offending
    /// window.
    pub fn build(self) -> Result<FaultPlan> {
        if let Some(message) = self.error {
            return Err(Error::invalid_config(message));
        }
        let mut events = self.events;
        events.sort_by_key(|e| e.at);
        for (i, a) in events.iter().enumerate() {
            for b in events.iter().skip(i + 1) {
                if a.kind.same_class(&b.kind) && b.at < a.end() {
                    return Err(Error::invalid_config(format!(
                        "fault {} at {}ns overlaps the {} window starting at {}ns \
                         (same-class windows must not overlap)",
                        b.kind.label(),
                        b.at.as_nanos(),
                        a.kind.label(),
                        a.at.as_nanos()
                    )));
                }
            }
        }
        Ok(FaultPlan { events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_default_and_empty() {
        assert!(FaultPlan::empty().is_empty());
        assert_eq!(FaultPlan::default(), FaultPlan::empty());
        assert_eq!(FaultPlan::builder().build().unwrap(), FaultPlan::empty());
    }

    #[test]
    fn events_sort_by_start_time() {
        let plan = FaultPlan::builder()
            .link_degraded(Nanos::from_millis(4), Nanos::from_millis(1), 4, 2)
            .outage(Nanos::from_millis(1), Nanos::from_millis(2))
            .build()
            .unwrap();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.events()[0].at, Nanos::from_millis(1));
        assert_eq!(plan.events()[0].kind.label(), "neoprof-outage");
        assert_eq!(plan.events()[1].end(), Nanos::from_millis(5));
    }

    #[test]
    fn zero_duration_is_rejected() {
        let err = FaultPlan::builder()
            .outage(Nanos::from_millis(1), Nanos::new(0))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("duration must be non-zero"), "{err}");
    }

    #[test]
    fn degenerate_link_multipliers_are_rejected() {
        for (lx, bd) in [(0, 2), (2, 0), (1, 1)] {
            assert!(
                FaultPlan::builder()
                    .link_degraded(Nanos::from_millis(1), Nanos::from_millis(1), lx, bd)
                    .build()
                    .is_err(),
                "latency_x {lx} / bandwidth_div {bd} must be rejected"
            );
        }
    }

    #[test]
    fn zero_frame_capacity_loss_is_rejected() {
        assert!(FaultPlan::builder()
            .capacity_loss(Nanos::from_millis(1), Nanos::from_millis(1), 0)
            .build()
            .is_err());
    }

    #[test]
    fn same_class_overlap_is_rejected_cross_class_allowed() {
        let err = FaultPlan::builder()
            .outage(Nanos::from_millis(1), Nanos::from_millis(4))
            .outage(Nanos::from_millis(3), Nanos::from_millis(1))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("overlaps"), "{err}");
        // Different classes may overlap: a link brownout during an
        // outage is a legitimate compound scenario.
        assert!(FaultPlan::builder()
            .outage(Nanos::from_millis(1), Nanos::from_millis(4))
            .link_degraded(Nanos::from_millis(2), Nanos::from_millis(1), 3, 1)
            .build()
            .is_ok());
    }

    #[test]
    fn back_to_back_windows_do_not_overlap() {
        // A flap: recovery at t=2ms, next outage starting exactly there.
        assert!(FaultPlan::builder()
            .outage(Nanos::from_millis(1), Nanos::from_millis(1))
            .outage(Nanos::from_millis(2), Nanos::from_millis(1))
            .build()
            .is_ok());
    }
}
