//! Simulated time, data volume and bandwidth quantities.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration or instant on the simulated clock, in nanoseconds.
///
/// The simulator uses a single monotonically increasing `Nanos` clock; all
/// latency charges (cache hits, DRAM/CXL access, page faults, migration
/// copies, profiler CPU time) are expressed in this unit.
///
/// ```
/// use neomem_types::Nanos;
/// let t = Nanos::from_millis(2) + Nanos::from_micros(5);
/// assert_eq!(t.as_nanos(), 2_005_000);
/// assert_eq!(t.as_secs_f64(), 0.002005);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(u64);

impl Nanos {
    /// The zero duration.
    pub const ZERO: Nanos = Nanos(0);

    /// Creates a duration of `ns` nanoseconds.
    #[inline]
    pub const fn new(ns: u64) -> Self {
        Self(ns)
    }

    /// Creates a duration of `us` microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Self(us * 1_000)
    }

    /// Creates a duration of `ms` milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }

    /// Creates a duration of `s` seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, saturating at zero for
    /// negative inputs.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        Self((s.max(0.0) * 1e9) as u64)
    }

    /// Returns the raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the duration in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction; clamps at zero instead of panicking.
    #[inline]
    pub const fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub const fn checked_add(self, rhs: Self) -> Option<Self> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Self(v)),
            None => None,
        }
    }

    /// Returns `true` when the duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by a dimensionless factor, saturating.
    #[inline]
    pub fn scale(self, factor: f64) -> Self {
        debug_assert!(factor >= 0.0, "negative time scale");
        Self((self.0 as f64 * factor) as u64)
    }
}

impl Add for Nanos {
    type Output = Nanos;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn mul(self, rhs: u64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn div(self, rhs: u64) -> Self {
        Self(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A data volume in bytes.
///
/// ```
/// use neomem_types::Bytes;
/// assert_eq!(Bytes::from_mib(2).as_u64(), 2 * 1024 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(u64);

impl Bytes {
    /// The zero volume.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a volume of `n` bytes.
    #[inline]
    pub const fn new(n: u64) -> Self {
        Self(n)
    }

    /// Creates a volume of `n` KiB.
    #[inline]
    pub const fn from_kib(n: u64) -> Self {
        Self(n << 10)
    }

    /// Creates a volume of `n` MiB.
    #[inline]
    pub const fn from_mib(n: u64) -> Self {
        Self(n << 20)
    }

    /// Creates a volume of `n` GiB.
    #[inline]
    pub const fn from_gib(n: u64) -> Self {
        Self(n << 30)
    }

    /// Returns the raw byte count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the volume in fractional MiB.
    #[inline]
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1u64 << 20) as f64
    }

    /// Returns the volume in fractional GiB.
    #[inline]
    pub fn as_gib_f64(self) -> f64 {
        self.0 as f64 / (1u64 << 30) as f64
    }
}

impl Add for Bytes {
    type Output = Bytes;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Bytes::ZERO, Add::add)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1 << 30 {
            write!(f, "{:.2}GiB", self.as_gib_f64())
        } else if self.0 >= 1 << 20 {
            write!(f, "{:.2}MiB", self.as_mib_f64())
        } else if self.0 >= 1 << 10 {
            write!(f, "{:.2}KiB", self.0 as f64 / 1024.0)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// A transfer rate expressed in bytes per second.
///
/// Used for memory-node bandwidth and for migration quotas
/// (the paper's `mquota`, default 256 MB/s).
///
/// ```
/// use neomem_types::{Bandwidth, Bytes, Nanos};
/// let bw = Bandwidth::from_mib_per_sec(1024);
/// // Transferring 1 MiB at 1 GiB/s takes ~1 ms.
/// let t = bw.transfer_time(Bytes::from_mib(1));
/// assert!((t.as_millis_f64() - 0.9765625).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Creates a bandwidth of `bps` bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is negative or non-finite.
    #[inline]
    pub fn from_bytes_per_sec(bps: f64) -> Self {
        assert!(bps.is_finite() && bps >= 0.0, "invalid bandwidth value");
        Self(bps)
    }

    /// Creates a bandwidth of `mib` MiB per second.
    #[inline]
    pub fn from_mib_per_sec(mib: u64) -> Self {
        Self((mib * (1 << 20)) as f64)
    }

    /// Creates a bandwidth of `gib` GiB per second.
    #[inline]
    pub fn from_gib_per_sec(gib: f64) -> Self {
        Self::from_bytes_per_sec(gib * (1u64 << 30) as f64)
    }

    /// Returns the rate in bytes per second.
    #[inline]
    pub fn bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Returns the rate in bytes per nanosecond.
    #[inline]
    pub fn bytes_per_nano(self) -> f64 {
        self.0 / 1e9
    }

    /// Returns the time needed to transfer `volume` at this rate.
    ///
    /// Returns [`Nanos::ZERO`] for a zero volume and `u64::MAX` ns for a
    /// zero rate (an unusable link).
    #[inline]
    pub fn transfer_time(self, volume: Bytes) -> Nanos {
        if volume.as_u64() == 0 {
            return Nanos::ZERO;
        }
        if self.0 <= 0.0 {
            return Nanos::new(u64::MAX);
        }
        Nanos::new((volume.as_u64() as f64 / self.bytes_per_nano()).ceil() as u64)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}MiB/s", self.0 / (1u64 << 20) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanos_constructors_agree() {
        assert_eq!(Nanos::from_secs(1), Nanos::from_millis(1000));
        assert_eq!(Nanos::from_millis(1), Nanos::from_micros(1000));
        assert_eq!(Nanos::from_micros(1), Nanos::new(1000));
        assert_eq!(Nanos::from_secs_f64(0.5), Nanos::from_millis(500));
    }

    #[test]
    fn nanos_arithmetic() {
        let a = Nanos::new(100);
        let b = Nanos::new(40);
        assert_eq!(a + b, Nanos::new(140));
        assert_eq!(a - b, Nanos::new(60));
        assert_eq!(a * 3, Nanos::new(300));
        assert_eq!(a / 2, Nanos::new(50));
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(a.scale(0.5), Nanos::new(50));
        let total: Nanos = [a, b, Nanos::new(1)].into_iter().sum();
        assert_eq!(total, Nanos::new(141));
    }

    #[test]
    fn nanos_display_uses_natural_units() {
        assert_eq!(format!("{}", Nanos::new(5)), "5ns");
        assert!(format!("{}", Nanos::from_micros(5)).ends_with("us"));
        assert!(format!("{}", Nanos::from_millis(5)).ends_with("ms"));
        assert!(format!("{}", Nanos::from_secs(5)).ends_with('s'));
    }

    #[test]
    fn bytes_units() {
        assert_eq!(Bytes::from_kib(1).as_u64(), 1024);
        assert_eq!(Bytes::from_gib(1).as_u64(), 1 << 30);
        assert!((Bytes::from_mib(3).as_mib_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_transfer_time() {
        let bw = Bandwidth::from_gib_per_sec(1.0);
        let t = bw.transfer_time(Bytes::from_gib(1));
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-6);
        assert_eq!(bw.transfer_time(Bytes::ZERO), Nanos::ZERO);
        let dead = Bandwidth::from_bytes_per_sec(0.0);
        assert_eq!(dead.transfer_time(Bytes::new(1)).as_nanos(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "invalid bandwidth")]
    fn bandwidth_rejects_negative() {
        let _ = Bandwidth::from_bytes_per_sec(-1.0);
    }
}
