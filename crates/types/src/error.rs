//! The workspace-wide error type.

use core::fmt;

use crate::NodeId;

/// A convenience alias for results produced by NeoMem crates.
pub type Result<T> = core::result::Result<T, Error>;

/// Errors surfaced by the NeoMem reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A configuration value was out of range or inconsistent.
    InvalidConfig {
        /// Which parameter was invalid.
        what: String,
    },
    /// A memory node ran out of free frames.
    OutOfMemory {
        /// The exhausted node.
        node: NodeId,
    },
    /// An MMIO access hit an offset that decodes to no NeoProf command.
    UnknownCommand {
        /// The faulting MMIO offset.
        offset: u64,
    },
    /// An MMIO command was issued with the wrong direction (e.g. a read of
    /// a write-only command register).
    CommandDirection {
        /// The faulting MMIO offset.
        offset: u64,
    },
    /// A virtual page was not mapped in the simulated page table.
    UnmappedPage {
        /// The raw virtual page index.
        vpn: u64,
    },
    /// A migration request could not be honoured (e.g. source equals
    /// destination, or the page is already mid-migration).
    MigrationRejected {
        /// Human-readable reason.
        reason: String,
    },
    /// A machine snapshot failed strict validation on load (corrupt,
    /// truncated, wrong version, or mismatched configuration).
    Snapshot {
        /// Human-readable reason.
        what: String,
    },
}

impl Error {
    /// Creates an [`Error::InvalidConfig`] from anything string-like.
    pub fn invalid_config(what: impl Into<String>) -> Self {
        Error::InvalidConfig { what: what.into() }
    }

    /// Creates an [`Error::Snapshot`] from anything string-like.
    pub fn snapshot(what: impl Into<String>) -> Self {
        Error::Snapshot { what: what.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            Error::OutOfMemory { node } => write!(f, "{node} has no free frames"),
            Error::UnknownCommand { offset } => {
                write!(f, "no NeoProf command at MMIO offset {offset:#x}")
            }
            Error::CommandDirection { offset } => {
                write!(f, "wrong access direction for NeoProf command at offset {offset:#x}")
            }
            Error::UnmappedPage { vpn } => write!(f, "virtual page {vpn} is not mapped"),
            Error::MigrationRejected { reason } => write!(f, "migration rejected: {reason}"),
            Error::Snapshot { what } => write!(f, "invalid snapshot: {what}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_period() {
        let cases = [
            Error::invalid_config("sketch width must be a power of two"),
            Error::OutOfMemory { node: NodeId::FAST },
            Error::UnknownCommand { offset: 0xdead },
            Error::CommandDirection { offset: 0x100 },
            Error::UnmappedPage { vpn: 7 },
            Error::MigrationRejected { reason: "page already on target".into() },
            Error::snapshot("version 9 is not supported"),
        ];
        for e in cases {
            let msg = format!("{e}");
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'), "no trailing period: {msg}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<Error>();
    }
}
