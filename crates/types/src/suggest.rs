//! Near-miss suggestions for user-facing name lookups.
//!
//! Shared by the config [`crate::config::FieldReader`] (unknown keys),
//! the scenario/machine registry (unknown names) and the `neomem-bench`
//! CLI (unknown figures), so every "did you mean ...?" in the project
//! uses the same distance and threshold.

/// Case-insensitive edit distance with adjacent transpositions
/// counted as one edit (optimal string alignment), capped at
/// `limit + 1` (the exact value above `limit` is not computed).
/// Transposed letters (`wieght`) are the most common typo, so plain
/// Levenshtein would price them out of the suggestion budget.
fn edit_distance(a: &str, b: &str, limit: usize) -> usize {
    let a: Vec<char> = a.chars().map(|c| c.to_ascii_lowercase()).collect();
    let b: Vec<char> = b.chars().map(|c| c.to_ascii_lowercase()).collect();
    if a.len().abs_diff(b.len()) > limit {
        return limit + 1;
    }
    // Three rolling rows: i-2, i-1, i — the transposition case reaches
    // back two rows.
    let mut prev2 = vec![0usize; b.len() + 1];
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        let mut row_min = curr[0];
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            let mut d = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
            if i > 0 && j > 0 && ca == b[j - 1] && a[i - 1] == cb {
                d = d.min(prev2[j - 1] + 1);
            }
            curr[j + 1] = d;
            row_min = row_min.min(d);
        }
        if row_min > limit {
            return limit + 1;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// The candidate closest to `input` within an edit-distance budget
/// that scales with the input length (1 for short names, up to 3 for
/// long ones). Returns `None` when nothing is plausibly close; exact
/// matches are skipped (the caller already knows `input` missed).
pub fn closest<'a>(input: &str, candidates: impl IntoIterator<Item = &'a str>) -> Option<&'a str> {
    let limit = (input.chars().count() / 4).clamp(1, 3);
    let mut best: Option<(usize, &str)> = None;
    for cand in candidates {
        let d = edit_distance(input, cand, limit);
        if d == 0 || d > limit {
            continue;
        }
        // Strictly-better keeps the first of equally-close candidates,
        // so suggestions are deterministic in iteration order.
        if best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, cand));
        }
    }
    best.map(|(_, c)| c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suggests_single_edit_typos() {
        assert_eq!(closest("wieght", ["workload", "weight", "seed"]), Some("weight"));
        assert_eq!(closest("fig1", ["fig11", "fig12", "corun"]), Some("fig11"));
        assert_eq!(closest("scenaros", ["scenarios", "corun"]), Some("scenarios"));
    }

    #[test]
    fn rejects_distant_and_exact_names() {
        assert_eq!(closest("zzz", ["workload", "weight"]), None);
        // Exact matches are not suggestions.
        assert_eq!(closest("weight", ["weight"]), None);
        // Short names only tolerate one edit.
        assert_eq!(closest("fg", ["fig11"]), None);
    }

    #[test]
    fn is_case_insensitive_and_deterministic() {
        assert_eq!(closest("Weight", ["weights"]), Some("weights"));
        // First of equally-distant candidates wins.
        assert_eq!(closest("fig19", ["fig11", "fig12"]), Some("fig11"));
    }
}
