//! Property-based tests for the text-config parser: arbitrary input
//! never panics, and valid documents survive a parse → render → parse
//! round trip unchanged.

use neomem_types::config::{ConfigDoc, ConfigEntry, ConfigSection, ConfigValue};
use proptest::prelude::*;

/// An identifier the grammar accepts for keys and section names:
/// leading letter, then letters/digits/underscores/dashes. `true` /
/// `false` are excluded (the grammar types them as booleans).
fn ident() -> impl Strategy<Value = String> {
    let head = prop::sample::select("abcdefghijklmnopqrstuvwxyz".chars().collect::<Vec<_>>());
    let tail = prop::collection::vec(
        prop::sample::select("abcdefghijklmnopqrstuvwxyz0123456789_-".chars().collect::<Vec<_>>()),
        0..10,
    );
    (head, tail).prop_map(|(h, t)| {
        let mut s = String::new();
        s.push(h);
        s.extend(t);
        if s == "true" || s == "false" {
            s.push('x');
        }
        s
    })
}

/// Any printable-ASCII string (exercises the quoted form, including
/// embedded quotes, backslashes, `#` and commas).
fn printable() -> impl Strategy<Value = String> {
    let chars: Vec<char> = (b' '..=b'~').map(char::from).collect();
    prop::collection::vec(prop::sample::select(chars), 0..16)
        .prop_map(|cs| cs.into_iter().collect())
}

/// A generated scalar value of every type the grammar supports.
fn scalar() -> impl Strategy<Value = ConfigValue> {
    prop_oneof![
        (0u64..u64::MAX).prop_map(ConfigValue::Int),
        // Finite floats only: the grammar rejects nan/inf at parse time.
        (-1e12f64..1e12).prop_map(ConfigValue::Float),
        prop::bool::ANY.prop_map(ConfigValue::Bool),
        ident().prop_map(ConfigValue::Str),
        printable().prop_map(ConfigValue::Str),
        (0u64..u64::MAX / 1_000_000_000).prop_map(ConfigValue::Duration),
        (0u64..u64::MAX >> 30).prop_map(ConfigValue::Size),
        (0.0f64..1e15).prop_map(ConfigValue::Rate),
    ]
}

/// A value: scalar, or a list of 2..5 scalars.
fn value() -> impl Strategy<Value = ConfigValue> {
    prop_oneof![
        scalar(),
        scalar(),
        scalar(),
        prop::collection::vec(scalar(), 2..5).prop_map(ConfigValue::List),
    ]
}

/// A section body with duplicate keys removed (the grammar rejects
/// duplicates within one section).
fn entries() -> impl Strategy<Value = Vec<(String, ConfigValue)>> {
    prop::collection::vec((ident(), value()), 0..6).prop_map(|pairs| {
        let mut seen = std::collections::BTreeSet::new();
        pairs.into_iter().filter(|(k, _)| seen.insert(k.clone())).collect()
    })
}

/// Builds a `ConfigDoc` from generated parts (section names may
/// repeat, mirroring `[tenant]`/`[event]` blocks) and renders it —
/// the canonical text form the round-trip property starts from.
fn build_doc(
    root: Vec<(String, ConfigValue)>,
    sections: Vec<(String, Vec<(String, ConfigValue)>)>,
) -> ConfigDoc {
    fn section(name: String, body: Vec<(String, ConfigValue)>) -> ConfigSection {
        ConfigSection {
            name,
            line: 0,
            entries: body
                .into_iter()
                .map(|(key, value)| ConfigEntry { key, value, line: 0 })
                .collect(),
        }
    }
    ConfigDoc {
        root: section(String::new(), root),
        sections: sections.into_iter().map(|(n, b)| section(n, b)).collect(),
    }
}

proptest! {
    // Fixed case count and no failure-persistence files: runs are
    // deterministic and CI-reproducible.
    #![proptest_config(ProptestConfig {
        cases: 256,
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    /// Arbitrary printable text (plus newlines) never panics the
    /// parser — every outcome is `Ok` or a `ConfigError`.
    #[test]
    fn arbitrary_text_never_panics(
        chars in prop::collection::vec(
            prop::sample::select(
                (b' '..=b'~').map(char::from).chain(['\n', '\t']).collect::<Vec<_>>(),
            ),
            0..300,
        ),
    ) {
        let input: String = chars.into_iter().collect();
        let _ = ConfigDoc::parse(&input);
    }

    /// Token-shaped junk lines (random keys, operators, unit soup)
    /// never panic either.
    #[test]
    fn token_soup_never_panics(
        tokens in prop::collection::vec(
            prop_oneof![
                prop::sample::select(vec![
                    "=", "[", "]", "\"", ",", "#", "\\", "ns", "us", "ms", "s", "B",
                    "KiB", "MiB", "GiB", "GiB/s", "true", "false", "1e999", "_",
                ]).prop_map(str::to_string),
                ident(),
                (0u64..u64::MAX).prop_map(|n| n.to_string()),
            ],
            0..40,
        ),
        seps in prop::collection::vec(prop::sample::select(vec![" ", "", "\n"]), 0..40),
    ) {
        let mut text = String::new();
        for (i, t) in tokens.iter().enumerate() {
            text.push_str(t);
            text.push_str(seps.get(i).copied().unwrap_or(" "));
        }
        let _ = ConfigDoc::parse(&text);
    }

    /// A structurally valid document survives parse → render → parse
    /// with structural equality, and render is a fixed point.
    #[test]
    fn valid_documents_round_trip(
        (root, sections) in (
            entries(),
            prop::collection::vec((ident(), entries()), 0..5),
        ),
    ) {
        let text = build_doc(root, sections).render();
        let doc = ConfigDoc::parse(&text)
            .unwrap_or_else(|e| panic!("generated doc must parse: {e}\n{text}"));
        let rendered = doc.render();
        let reparsed = ConfigDoc::parse(&rendered)
            .unwrap_or_else(|e| panic!("rendered doc must parse: {e}\n{rendered}"));
        prop_assert!(doc.structural_eq(&reparsed), "round trip changed:\n{}", rendered);
        prop_assert_eq!(reparsed.render(), rendered, "render not a fixed point");
    }
}
