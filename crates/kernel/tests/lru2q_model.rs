//! Model-based property tests for the dense LRU-2Q.
//!
//! The production structure ([`neomem_kernel::Lru2Q`]) uses lazy
//! deletion over `(seq, page)` tickets with a structure-of-arrays side
//! table; the oracle here is the obviously-correct version: two plain
//! `Vec`s scanned linearly, no tickets, no dense index. Any operation
//! sequence must produce identical membership, counts and — the part
//! lazy deletion is most likely to break — identical eviction order.

use neomem_types::VirtPage;
use neomem_kernel::Lru2Q;
use proptest::prelude::*;

/// The naive reference: `a1in`/`am` hold page numbers, coldest first.
#[derive(Debug, Default)]
struct NaiveModel {
    a1in: Vec<u64>,
    am: Vec<u64>,
}

impl NaiveModel {
    fn contains(&self, page: u64) -> bool {
        self.a1in.contains(&page) || self.am.contains(&page)
    }

    fn len(&self) -> usize {
        self.a1in.len() + self.am.len()
    }

    fn insert(&mut self, page: u64) {
        if !self.contains(page) {
            self.a1in.push(page);
        }
    }

    fn on_access(&mut self, page: u64) {
        if !self.contains(page) {
            return;
        }
        self.a1in.retain(|&p| p != page);
        self.am.retain(|&p| p != page);
        self.am.push(page);
    }

    fn remove(&mut self, page: u64) {
        self.a1in.retain(|&p| p != page);
        self.am.retain(|&p| p != page);
    }

    fn pop_coldest(&mut self, n: usize) -> Vec<u64> {
        let mut victims = Vec::new();
        while victims.len() < n {
            if !self.a1in.is_empty() {
                victims.push(self.a1in.remove(0));
            } else if !self.am.is_empty() {
                victims.push(self.am.remove(0));
            } else {
                break;
            }
        }
        victims
    }
}

/// One scripted operation over both structures.
#[derive(Debug, Clone)]
enum Op {
    Insert(u64),
    Access(u64),
    Remove(u64),
    Pop(usize),
    Compact,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // A small page universe maximises collisions: the same page gets
    // inserted, accessed, removed and re-inserted many times per run,
    // which is exactly the ticket-expiry traffic lazy deletion must
    // survive.
    // Inserts and accesses are listed twice: the vendored prop_oneof
    // is unweighted, and runs should mostly mutate membership.
    prop_oneof![
        (0u64..24).prop_map(Op::Insert),
        (0u64..24).prop_map(Op::Insert),
        (0u64..24).prop_map(Op::Access),
        (0u64..24).prop_map(Op::Access),
        (0u64..24).prop_map(Op::Remove),
        (1usize..5).prop_map(Op::Pop),
        Just(Op::Compact),
    ]
}

proptest! {
    /// Every interleaving of operations leaves the dense structure and
    /// the naive model in agreement — membership, live count, and the
    /// exact victim sequence of every pop.
    #[test]
    fn dense_lru2q_matches_naive_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut dense = Lru2Q::new();
        let mut model = NaiveModel::default();
        for op in &ops {
            match *op {
                Op::Insert(p) => {
                    dense.insert(VirtPage::new(p));
                    model.insert(p);
                }
                Op::Access(p) => {
                    dense.on_access(VirtPage::new(p));
                    model.on_access(p);
                }
                Op::Remove(p) => {
                    dense.remove(VirtPage::new(p));
                    model.remove(p);
                }
                Op::Pop(n) => {
                    let got: Vec<u64> =
                        dense.pop_coldest(n).iter().map(|v| v.index()).collect();
                    prop_assert_eq!(got, model.pop_coldest(n), "victim order after {:?}", op);
                }
                // Compact only touches the dense side: it must be
                // unobservable, so the model deliberately has no
                // counterpart operation.
                Op::Compact => dense.compact(),
            }
            prop_assert_eq!(dense.len(), model.len());
            for p in 0..24u64 {
                prop_assert_eq!(
                    dense.contains(VirtPage::new(p)),
                    model.contains(p),
                    "membership of page {} diverged", p
                );
            }
        }
        // Drain both: the full residual eviction order must agree too.
        let got: Vec<u64> = dense.pop_coldest(usize::MAX).iter().map(|v| v.index()).collect();
        prop_assert_eq!(got, model.pop_coldest(usize::MAX), "final drain order");
        prop_assert!(dense.is_empty());
    }
}

/// The stale-ticket regression the dense index exists to prevent: a
/// page removed (unmapped) and later re-inserted must behave as a
/// fresh probationary page — its dead `Am` ticket from the first life
/// must neither resurrect hot status nor distort the victim order.
#[test]
fn reinserted_page_does_not_reuse_stale_ticket() {
    let mut q = Lru2Q::new();
    let p = |i| VirtPage::new(i);
    q.insert(p(1));
    q.on_access(p(1)); // page 1 graduates to Am (hot)
    q.remove(p(1)); // unmapped — the Am ticket is now stale
    q.insert(p(2));
    q.insert(p(1)); // second life: probationary again
    // FIFO order of the *new* tickets decides; page 1's stale hot
    // ticket must not save it from probationary eviction.
    assert_eq!(q.pop_coldest(2), vec![p(2), p(1)]);
    assert!(q.is_empty(), "no ghost entries left behind");
}

/// Same shape across a snapshot/restore cycle: stale tickets are
/// dropped by serialisation, so a restored structure must still evict
/// in the model's order.
#[test]
fn snapshot_restore_preserves_model_order() {
    let mut q = Lru2Q::new();
    let p = |i| VirtPage::new(i);
    for i in 0..8 {
        q.insert(p(i));
    }
    for i in [1, 3, 5] {
        q.on_access(p(i));
    }
    q.remove(p(0));
    q.on_access(p(3)); // refresh: Am order is now 1, 5, 3
    let snap = q.snapshot();
    let mut restored = Lru2Q::new();
    restored.restore(&snap).expect("round-trip");
    assert_eq!(
        restored.pop_coldest(10),
        vec![p(2), p(4), p(6), p(7), p(1), p(5), p(3)],
        "restored eviction order"
    );
}
