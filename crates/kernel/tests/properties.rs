//! Property-based tests for kernel memory-management invariants.

use neomem_kernel::{Kernel, KernelConfig};
use neomem_types::{Nanos, Tier, VirtPage};
use proptest::prelude::*;

/// Random sequences of kernel operations.
#[derive(Debug, Clone)]
enum Op {
    Touch(u64),
    Promote(u64),
    Demote(u64),
    Access(u64),
    DemoteColdest(usize),
}

fn op_strategy(pages: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..pages).prop_map(Op::Touch),
        (0..pages).prop_map(Op::Promote),
        (0..pages).prop_map(Op::Demote),
        (0..pages).prop_map(Op::Access),
        (1usize..4).prop_map(Op::DemoteColdest),
    ]
}

fn apply(kernel: &mut Kernel, op: &Op) {
    let now = Nanos::ZERO;
    match *op {
        Op::Touch(p) => {
            let _ = kernel.touch_alloc(VirtPage::new(p), now);
        }
        Op::Promote(p) => {
            let _ = kernel.promote(VirtPage::new(p), now);
        }
        Op::Demote(p) => {
            let _ = kernel.demote(VirtPage::new(p), now);
        }
        Op::Access(p) => kernel.record_fast_access(VirtPage::new(p)),
        Op::DemoteColdest(n) => {
            let _ = kernel.demote_coldest(n, now);
        }
    }
}

proptest! {
    // Fixed case count and no failure-persistence files: runs are
    // deterministic and CI-reproducible.
    #![proptest_config(ProptestConfig {
        cases: 64,
        failure_persistence: None,
        ..ProptestConfig::default()
    })]
    /// Frame conservation: under any operation sequence, the number of
    /// used frames equals the number of mapped pages, the rmap agrees
    /// with the page table in both directions, and no frame is shared.
    #[test]
    fn frame_accounting_is_exact(
        ops in prop::collection::vec(op_strategy(48), 1..300),
    ) {
        let mut kernel = Kernel::new(KernelConfig::with_frames(16, 48));
        for op in &ops {
            apply(&mut kernel, op);
        }
        let used = kernel.memory().allocator(Tier::Fast).used_frames()
            + kernel.memory().allocator(Tier::Slow).used_frames();
        let mapped = kernel.page_table().mapped_count() as u64;
        prop_assert_eq!(used, mapped, "used frames must equal mapped pages");

        let mut seen_frames = std::collections::HashSet::new();
        for (vpage, pte) in kernel.page_table().iter() {
            prop_assert!(seen_frames.insert(pte.frame), "frame {} double-mapped", pte.frame);
            prop_assert_eq!(
                kernel.vpage_of(pte.frame),
                Some(vpage),
                "rmap must invert the page table"
            );
        }
    }

    /// Migration counters are consistent: promotions and demotions only
    /// ever move mapped pages, and ping-pongs never exceed promotions.
    #[test]
    fn migration_counters_consistent(
        ops in prop::collection::vec(op_strategy(32), 1..300),
    ) {
        let mut kernel = Kernel::new(KernelConfig::with_frames(8, 40));
        for op in &ops {
            apply(&mut kernel, op);
        }
        let stats = kernel.stats();
        prop_assert!(stats.ping_pongs <= stats.promotions);
        prop_assert_eq!(stats.promoted_bytes.as_u64(), stats.promotions * 4096);
        prop_assert_eq!(stats.demoted_bytes.as_u64(), stats.demotions * 4096);
    }

    /// Tier placement is always consistent with the physical layout:
    /// `tier_of` derived from the frame number matches the allocator
    /// that owns the frame.
    #[test]
    fn tier_placement_consistent(
        ops in prop::collection::vec(op_strategy(32), 1..200),
    ) {
        let mut kernel = Kernel::new(KernelConfig::with_frames(8, 40));
        for op in &ops {
            apply(&mut kernel, op);
        }
        for (vpage, pte) in kernel.page_table().iter() {
            let tier = kernel.memory().tier_of(pte.frame);
            prop_assert!(kernel.memory().allocator(tier).owns(pte.frame));
            prop_assert_eq!(kernel.tier_of(vpage).unwrap(), tier);
        }
    }

    /// The kernel never loses pages: once touched, a page stays mapped
    /// through any sequence of migrations.
    #[test]
    fn pages_never_vanish(
        touched in prop::collection::vec(0u64..24, 1..24),
        ops in prop::collection::vec(op_strategy(24), 0..200),
    ) {
        let mut kernel = Kernel::new(KernelConfig::with_frames(8, 32));
        for &p in &touched {
            kernel.touch_alloc(VirtPage::new(p), Nanos::ZERO).unwrap();
        }
        for op in &ops {
            apply(&mut kernel, op);
        }
        for &p in &touched {
            prop_assert!(
                kernel.translate(VirtPage::new(p)).is_ok(),
                "page {} vanished",
                p
            );
        }
    }
}
