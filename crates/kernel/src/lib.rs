//! Simulated OS-kernel memory management.
//!
//! Models the Linux v6.3 mechanisms NeoMem's software side builds on
//! (paper Fig. 5, §V):
//!
//! * [`PageTable`] — per-process PTEs with the `Accessed` bit (PTE-scan),
//!   a hint-fault *poison* bit (AutoNUMA/TPP), and the `PG_demoted` flag
//!   NeoMem adds for ping-pong detection.
//! * [`Lru2Q`] — the kernel's two-queue reclaim lists, used by NeoMem for
//!   *cold* page detection on the fast tier (the paper deliberately keeps
//!   cold detection in software since it "does not need a high
//!   resolution").
//! * [`Kernel`] — the facade tying page table + tiered memory + LRU
//!   together, exposing first-touch NUMA allocation and the promotion /
//!   demotion entry points the tiering daemons call, with explicit time
//!   costs, `PG_demoted` upkeep and ping-pong accounting.
//! * [`HugePageMap`] — Transparent Huge Page grouping (2 MiB = 512 base
//!   pages) for the Table VI experiment.
//!
//! # Example
//!
//! ```
//! use neomem_kernel::{Kernel, KernelConfig};
//! use neomem_types::{Nanos, Tier, VirtPage};
//!
//! let mut k = Kernel::new(KernelConfig::with_frames(8, 16));
//! let vp = VirtPage::new(0);
//! k.touch_alloc(vp, Nanos::ZERO)?; // first-touch: lands on the fast tier
//! assert_eq!(k.tier_of(vp)?, Tier::Fast);
//! k.demote(vp, Nanos::ZERO)?;
//! assert_eq!(k.tier_of(vp)?, Tier::Slow);
//! k.promote(vp, Nanos::ZERO)?;     // ping-pong: demoted then promoted
//! assert_eq!(k.stats().ping_pongs, 1);
//! # Ok::<(), neomem_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kernel;
mod lru2q;
mod page_table;
mod thp;
pub mod virt;

pub use kernel::{Kernel, KernelConfig, KernelStats, MigrationCosts};
pub use lru2q::Lru2Q;
pub use page_table::{PageTable, Pte};
pub use thp::{huge_base, HugePageMap, PAGES_PER_HUGE};
