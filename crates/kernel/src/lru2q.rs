//! The LRU-2Q cold-page detector (Johnson & Shasha's 2Q, as used by the
//! Linux active/inactive page lists).
//!
//! New pages enter the probationary `A1in` FIFO; a page re-accessed while
//! probationary graduates to the `Am` LRU list. Demotion victims come
//! from the cold end of `A1in` first (touched once, never again), then
//! from the LRU end of `Am`.

use std::collections::VecDeque;

use neomem_types::json::{hex_from_u64s, Json};
use neomem_types::{Error, Result, VirtPage};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Queue {
    A1in,
    Am,
}

/// Dense side-table state byte: the page is not tracked.
const STATE_NONE: u8 = 0;
/// Dense side-table state byte: the live ticket sits in `A1in`.
const STATE_A1IN: u8 = 1;
/// Dense side-table state byte: the live ticket sits in `Am`.
const STATE_AM: u8 = 2;

impl Queue {
    fn state(self) -> u8 {
        match self {
            Queue::A1in => STATE_A1IN,
            Queue::Am => STATE_AM,
        }
    }
}

/// A 2Q structure over the fast tier's resident pages.
///
/// Uses lazy deletion: queues store `(seq, page)` tickets and a dense
/// side table records each page's live ticket, so `on_access` is O(1)
/// amortised. The side table is structure-of-arrays — a `u64` sequence
/// lane and a one-byte queue-state lane, both indexed by page number —
/// so the `record_fast_access` hot path touches one byte to test
/// membership instead of a 16-byte `Option<Entry>`. Pages are dense in
/// `0..rss_pages` and the table is only ever keyed, never iterated.
#[derive(Debug, Clone, Default)]
pub struct Lru2Q {
    /// Sequence of each page's live ticket; meaningful only where the
    /// matching `states` byte is not [`STATE_NONE`].
    seqs: Vec<u64>,
    /// Which queue (if any) holds each page's live ticket.
    states: Vec<u8>,
    live: usize,
    a1in: VecDeque<(u64, u64)>,
    am: VecDeque<(u64, u64)>,
    next_seq: u64,
}

impl Lru2Q {
    /// Creates an empty structure.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tracked pages.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Whether `page` is tracked.
    #[inline]
    pub fn contains(&self, page: VirtPage) -> bool {
        matches!(self.states.get(page.index() as usize), Some(s) if *s != STATE_NONE)
    }

    #[inline]
    fn live_at(&self, page: u64, seq: u64, which: Queue) -> bool {
        let idx = page as usize;
        matches!(self.states.get(idx), Some(s) if *s == which.state()) && self.seqs[idx] == seq
    }

    fn set(&mut self, page: u64, queue: Queue, seq: u64) {
        let idx = page as usize;
        if idx >= self.states.len() {
            self.states.resize(idx + 1, STATE_NONE);
            self.seqs.resize(idx + 1, 0);
        }
        if self.states[idx] == STATE_NONE {
            self.live += 1;
        }
        self.states[idx] = queue.state();
        self.seqs[idx] = seq;
    }

    fn push(&mut self, page: u64, queue: Queue) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.set(page, queue, seq);
        match queue {
            Queue::A1in => self.a1in.push_back((seq, page)),
            Queue::Am => self.am.push_back((seq, page)),
        }
    }

    fn clear_slot(&mut self, page: u64) {
        if let Some(state) = self.states.get_mut(page as usize) {
            if *state != STATE_NONE {
                *state = STATE_NONE;
                self.live -= 1;
            }
        }
    }

    /// Registers a page newly resident on the fast tier.
    pub fn insert(&mut self, page: VirtPage) {
        if !self.contains(page) {
            self.push(page.index(), Queue::A1in);
        }
    }

    /// Records an access to a resident page: probationary pages graduate
    /// to `Am`; `Am` pages refresh to most-recently-used.
    #[inline]
    pub fn on_access(&mut self, page: VirtPage) {
        let key = page.index();
        if self.contains(page) {
            // Both transitions re-enqueue at the hot end of Am.
            self.push(key, Queue::Am);
        }
    }

    /// Stops tracking a page (demoted or unmapped).
    pub fn remove(&mut self, page: VirtPage) {
        self.clear_slot(page.index());
        // Queue tickets expire lazily.
    }

    fn pop_live(
        queue: &mut VecDeque<(u64, u64)>,
        states: &[u8],
        seqs: &[u64],
        which: Queue,
    ) -> Option<u64> {
        while let Some(&(seq, page)) = queue.front() {
            queue.pop_front();
            let idx = page as usize;
            if matches!(states.get(idx), Some(s) if *s == which.state()) && seqs[idx] == seq {
                return Some(page);
            }
        }
        None
    }

    /// Pops up to `n` cold victims: probationary-FIFO first, then LRU.
    /// Popped pages are removed from tracking.
    pub fn pop_coldest(&mut self, n: usize) -> Vec<VirtPage> {
        // `n` is a demand, not a size: callers may pass usize::MAX to
        // drain, so cap the allocation hint at what can actually pop.
        let mut victims = Vec::with_capacity(n.min(self.live));
        while victims.len() < n {
            let from_a1 = Self::pop_live(&mut self.a1in, &self.states, &self.seqs, Queue::A1in);
            let page = match from_a1 {
                Some(p) => Some(p),
                None => Self::pop_live(&mut self.am, &self.states, &self.seqs, Queue::Am),
            };
            match page {
                Some(p) => {
                    self.clear_slot(p);
                    victims.push(VirtPage::new(p));
                }
                None => break,
            }
        }
        victims
    }

    /// Compacts the lazy queues (call occasionally in long runs).
    pub fn compact(&mut self) {
        let (states, seqs) = (&self.states, &self.seqs);
        let live = |seq: u64, page: u64, which: Queue| {
            let idx = page as usize;
            matches!(states.get(idx), Some(s) if *s == which.state()) && seqs[idx] == seq
        };
        self.a1in.retain(|&(seq, page)| live(seq, page, Queue::A1in));
        self.am.retain(|&(seq, page)| live(seq, page, Queue::Am));
    }

    fn live_tickets(&self, queue: &VecDeque<(u64, u64)>, which: Queue) -> Vec<u64> {
        // Interleaved (seq, page) pairs of live tickets only — expired
        // lazy-deletion tickets carry no information worth persisting.
        let mut out = Vec::new();
        for &(seq, page) in queue {
            if self.live_at(page, seq, which) {
                out.push(seq);
                out.push(page);
            }
        }
        out
    }

    /// Serialises the live queue tickets for a machine snapshot. Expired
    /// tickets are dropped (equivalent to a [`Lru2Q::compact`]), which
    /// does not change observable behaviour.
    pub fn snapshot(&self) -> Json {
        Json::obj([
            ("a1in", Json::Str(hex_from_u64s(&self.live_tickets(&self.a1in, Queue::A1in)))),
            ("am", Json::Str(hex_from_u64s(&self.live_tickets(&self.am, Queue::Am)))),
            ("next_seq", Json::U64(self.next_seq)),
        ])
    }

    /// Restores [`Lru2Q::snapshot`] state, replacing the current
    /// contents.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] on missing/malformed fields, odd-length
    /// ticket arrays, a page appearing twice, or a ticket at or beyond
    /// `next_seq`.
    pub fn restore(&mut self, snap: &Json) -> Result<()> {
        let next_seq = snap.req_u64("next_seq")?;
        let mut staged = Self { next_seq, ..Self::default() };
        for (key, queue) in [("a1in", Queue::A1in), ("am", Queue::Am)] {
            let tickets = snap.req_u64s(key)?;
            if tickets.len() % 2 != 0 {
                return Err(Error::snapshot(format!("odd-length {key} ticket array")));
            }
            for pair in tickets.chunks_exact(2) {
                let (seq, page) = (pair[0], pair[1]);
                if seq >= next_seq {
                    return Err(Error::snapshot(format!(
                        "{key} ticket sequence {seq} is not below next_seq {next_seq}"
                    )));
                }
                if staged.contains(VirtPage::new(page)) {
                    return Err(Error::snapshot(format!("page {page} has two live lru tickets")));
                }
                staged.set(page, queue, seq);
                match queue {
                    Queue::A1in => staged.a1in.push_back((seq, page)),
                    Queue::Am => staged.am.push_back((seq, page)),
                }
            }
        }
        *self = staged;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vp(i: u64) -> VirtPage {
        VirtPage::new(i)
    }

    #[test]
    fn insert_and_contains() {
        let mut q = Lru2Q::new();
        q.insert(vp(1));
        assert!(q.contains(vp(1)));
        assert_eq!(q.len(), 1);
        q.insert(vp(1)); // idempotent
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn once_touched_pages_evicted_first() {
        let mut q = Lru2Q::new();
        q.insert(vp(1)); // touched once, never again
        q.insert(vp(2));
        q.on_access(vp(2)); // graduates to Am
        let victims = q.pop_coldest(1);
        assert_eq!(victims, vec![vp(1)], "probationary page must go first");
    }

    #[test]
    fn am_evicts_in_lru_order() {
        let mut q = Lru2Q::new();
        for i in 1..=3 {
            q.insert(vp(i));
            q.on_access(vp(i));
        }
        q.on_access(vp(1)); // refresh 1: LRU order is now 2, 3, 1
        let victims = q.pop_coldest(3);
        assert_eq!(victims, vec![vp(2), vp(3), vp(1)]);
    }

    #[test]
    fn remove_prevents_eviction() {
        let mut q = Lru2Q::new();
        q.insert(vp(1));
        q.insert(vp(2));
        q.remove(vp(1));
        assert!(!q.contains(vp(1)));
        let victims = q.pop_coldest(5);
        assert_eq!(victims, vec![vp(2)]);
    }

    #[test]
    fn pop_exhausts_then_empty() {
        let mut q = Lru2Q::new();
        for i in 0..4 {
            q.insert(vp(i));
        }
        assert_eq!(q.pop_coldest(10).len(), 4);
        assert!(q.is_empty());
        assert!(q.pop_coldest(1).is_empty());
    }

    #[test]
    fn access_to_untracked_page_ignored() {
        let mut q = Lru2Q::new();
        q.on_access(vp(9));
        assert!(q.is_empty());
    }

    #[test]
    fn compact_preserves_behaviour() {
        let mut q = Lru2Q::new();
        for i in 0..10 {
            q.insert(vp(i));
            if i % 2 == 0 {
                q.on_access(vp(i));
            }
        }
        for i in 0..5 {
            q.remove(vp(i));
        }
        q.compact();
        // Odd pages 5,7,9 are probationary; even 6,8 are in Am.
        let victims = q.pop_coldest(10);
        assert_eq!(victims, vec![vp(5), vp(7), vp(9), vp(6), vp(8)]);
    }

    #[test]
    fn reaccess_keeps_single_live_ticket() {
        let mut q = Lru2Q::new();
        q.insert(vp(1));
        for _ in 0..100 {
            q.on_access(vp(1));
        }
        assert_eq!(q.pop_coldest(10), vec![vp(1)], "only one live instance");
    }
}
