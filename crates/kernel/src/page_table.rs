//! The simulated page table.

use neomem_types::json::{hex_from_u64s, Json};
use neomem_types::{Error, PageNum, Result, VirtPage};

/// One page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// The backing physical frame.
    pub frame: PageNum,
    /// Hardware `Accessed` bit: set by the page walker on TLB fill,
    /// cleared and harvested by PTE-scan profilers.
    pub accessed: bool,
    /// Hint-fault poison: the PTE is marked `PROT_NONE`-like so the next
    /// touch faults into the kernel (AutoNUMA / TPP / Thermostat).
    pub poisoned: bool,
    /// Linux's `PG_demoted` page flag as introduced by the paper for
    /// ping-pong severity tracking (§V-A).
    pub demoted: bool,
}

impl Pte {
    fn new(frame: PageNum) -> Self {
        Self { frame, accessed: false, poisoned: false, demoted: false }
    }
}

/// A dense page table over virtual pages `0..rss_pages`.
///
/// Workload generators emit virtual pages from a contiguous range, so a
/// flat `Vec<Option<Pte>>` is both faithful (4-level walks are charged in
/// time, not structure) and fast.
#[derive(Debug, Clone)]
pub struct PageTable {
    entries: Vec<Option<Pte>>,
    /// Running count of `Some` entries, maintained by the mapping paths
    /// so [`mapped_count`](Self::mapped_count) is O(1) instead of a
    /// full-span scan.
    mapped: usize,
}

impl PageTable {
    /// Creates an empty table covering `rss_pages` virtual pages.
    pub fn new(rss_pages: u64) -> Self {
        Self { entries: vec![None; rss_pages as usize], mapped: 0 }
    }

    /// Number of virtual pages covered (mapped or not).
    pub fn span(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Number of currently mapped pages.
    pub fn mapped_count(&self) -> usize {
        debug_assert_eq!(
            self.mapped,
            self.entries.iter().filter(|e| e.is_some()).count(),
            "running mapped counter out of sync with the table"
        );
        self.mapped
    }

    #[inline]
    fn slot(&self, vpage: VirtPage) -> Result<&Option<Pte>> {
        self.entries.get(vpage.index() as usize).ok_or(Error::UnmappedPage { vpn: vpage.index() })
    }

    #[inline]
    fn slot_mut(&mut self, vpage: VirtPage) -> Result<&mut Option<Pte>> {
        self.entries
            .get_mut(vpage.index() as usize)
            .ok_or(Error::UnmappedPage { vpn: vpage.index() })
    }

    /// Maps `vpage` to `frame`, replacing any existing mapping.
    ///
    /// # Errors
    ///
    /// [`Error::UnmappedPage`] when `vpage` is outside the table span.
    pub fn map(&mut self, vpage: VirtPage, frame: PageNum) -> Result<Option<PageNum>> {
        let slot = self.slot_mut(vpage)?;
        let old = slot.map(|p| p.frame);
        *slot = Some(Pte::new(frame));
        if old.is_none() {
            self.mapped += 1;
        }
        Ok(old)
    }

    /// Unmaps `vpage`, returning the removed PTE if one existed.
    ///
    /// # Errors
    ///
    /// [`Error::UnmappedPage`] when `vpage` is outside the table span.
    pub fn unmap(&mut self, vpage: VirtPage) -> Result<Option<Pte>> {
        let slot = self.slot_mut(vpage)?;
        let old = slot.take();
        if old.is_some() {
            self.mapped -= 1;
        }
        Ok(old)
    }

    /// Returns the PTE of `vpage`.
    ///
    /// # Errors
    ///
    /// [`Error::UnmappedPage`] when unmapped or out of span.
    pub fn get(&self, vpage: VirtPage) -> Result<Pte> {
        self.slot(vpage)?.ok_or(Error::UnmappedPage { vpn: vpage.index() })
    }

    /// Whether `vpage` is mapped.
    pub fn is_mapped(&self, vpage: VirtPage) -> bool {
        matches!(self.entries.get(vpage.index() as usize), Some(Some(_)))
    }

    /// Mutates the PTE of `vpage` through `f`.
    ///
    /// # Errors
    ///
    /// [`Error::UnmappedPage`] when unmapped or out of span.
    pub fn update<F: FnOnce(&mut Pte)>(&mut self, vpage: VirtPage, f: F) -> Result<()> {
        match self.slot_mut(vpage)? {
            Some(pte) => {
                f(pte);
                Ok(())
            }
            None => Err(Error::UnmappedPage { vpn: vpage.index() }),
        }
    }

    /// Sets the `Accessed` bit (page-walker behaviour on TLB fill).
    ///
    /// # Errors
    ///
    /// [`Error::UnmappedPage`] when unmapped.
    pub fn mark_accessed(&mut self, vpage: VirtPage) -> Result<()> {
        self.update(vpage, |pte| pte.accessed = true)
    }

    /// Iterates `(vpage, pte)` over all mapped pages.
    pub fn iter(&self) -> impl Iterator<Item = (VirtPage, Pte)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.map(|pte| (VirtPage::new(i as u64), pte)))
    }

    /// Clears every `Accessed` bit and returns how many were set — one
    /// PTE-scan epoch boundary. The caller charges scan time per visited
    /// entry.
    pub fn clear_accessed_bits(&mut self) -> u64 {
        let mut cleared = 0;
        for e in self.entries.iter_mut().flatten() {
            if e.accessed {
                cleared += 1;
                e.accessed = false;
            }
        }
        cleared
    }

    /// Serialises the table for a machine snapshot: a mapped bitmask plus
    /// parallel frame and flag arrays (bit 0 accessed, bit 1 poisoned,
    /// bit 2 demoted).
    pub fn snapshot(&self) -> Json {
        let n = self.entries.len();
        let mut mapped = vec![0u64; n.div_ceil(64)];
        let mut frames = vec![0u64; n];
        let mut flags = vec![0u64; n];
        for (i, e) in self.entries.iter().enumerate() {
            if let Some(pte) = e {
                mapped[i / 64] |= 1 << (i % 64);
                frames[i] = pte.frame.index();
                flags[i] = u64::from(pte.accessed)
                    | u64::from(pte.poisoned) << 1
                    | u64::from(pte.demoted) << 2;
            }
        }
        Json::obj([
            ("mapped", Json::Str(hex_from_u64s(&mapped))),
            ("frames", Json::Str(hex_from_u64s(&frames))),
            ("flags", Json::Str(hex_from_u64s(&flags))),
        ])
    }

    /// Restores [`PageTable::snapshot`] state onto a table with the same
    /// span.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] on missing/malformed fields, arrays
    /// sized for a different span, or out-of-range flag bits.
    pub fn restore(&mut self, snap: &Json) -> Result<()> {
        let n = self.entries.len();
        let mapped = snap.req_u64s("mapped")?;
        let frames = snap.req_u64s("frames")?;
        let flags = snap.req_u64s("flags")?;
        if mapped.len() != n.div_ceil(64) || frames.len() != n || flags.len() != n {
            return Err(Error::snapshot(format!(
                "page table snapshot covers {} pages, expected {n}",
                frames.len()
            )));
        }
        let mut count = 0;
        for (i, e) in self.entries.iter_mut().enumerate() {
            if (mapped[i / 64] >> (i % 64)) & 1 == 1 {
                if flags[i] > 0b111 {
                    return Err(Error::snapshot(format!("unknown pte flag bits {:#x}", flags[i])));
                }
                *e = Some(Pte {
                    frame: PageNum::new(frames[i]),
                    accessed: flags[i] & 1 != 0,
                    poisoned: flags[i] & 2 != 0,
                    demoted: flags[i] & 4 != 0,
                });
                count += 1;
            } else {
                *e = None;
            }
        }
        self.mapped = count;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_get_round_trip() {
        let mut pt = PageTable::new(4);
        pt.map(VirtPage::new(2), PageNum::new(99)).unwrap();
        let pte = pt.get(VirtPage::new(2)).unwrap();
        assert_eq!(pte.frame, PageNum::new(99));
        assert!(!pte.accessed && !pte.poisoned && !pte.demoted);
    }

    #[test]
    fn unmapped_and_out_of_span_error() {
        let pt = PageTable::new(4);
        assert_eq!(pt.get(VirtPage::new(1)), Err(Error::UnmappedPage { vpn: 1 }));
        assert_eq!(pt.get(VirtPage::new(9)), Err(Error::UnmappedPage { vpn: 9 }));
        assert!(!pt.is_mapped(VirtPage::new(1)));
        assert!(!pt.is_mapped(VirtPage::new(9)));
    }

    #[test]
    fn remap_returns_old_frame() {
        let mut pt = PageTable::new(2);
        assert_eq!(pt.map(VirtPage::new(0), PageNum::new(1)).unwrap(), None);
        assert_eq!(pt.map(VirtPage::new(0), PageNum::new(2)).unwrap(), Some(PageNum::new(1)));
    }

    #[test]
    fn accessed_bit_lifecycle() {
        let mut pt = PageTable::new(3);
        for i in 0..3 {
            pt.map(VirtPage::new(i), PageNum::new(i)).unwrap();
        }
        pt.mark_accessed(VirtPage::new(0)).unwrap();
        pt.mark_accessed(VirtPage::new(2)).unwrap();
        assert_eq!(pt.clear_accessed_bits(), 2);
        assert_eq!(pt.clear_accessed_bits(), 0, "second scan sees nothing");
        assert!(!pt.get(VirtPage::new(0)).unwrap().accessed);
    }

    #[test]
    fn update_flags() {
        let mut pt = PageTable::new(1);
        pt.map(VirtPage::new(0), PageNum::new(5)).unwrap();
        pt.update(VirtPage::new(0), |pte| {
            pte.poisoned = true;
            pte.demoted = true;
        })
        .unwrap();
        let pte = pt.get(VirtPage::new(0)).unwrap();
        assert!(pte.poisoned && pte.demoted);
    }

    #[test]
    fn mapped_count_tracks_map_remap_unmap() {
        let mut pt = PageTable::new(4);
        assert_eq!(pt.mapped_count(), 0);
        pt.map(VirtPage::new(0), PageNum::new(1)).unwrap();
        pt.map(VirtPage::new(2), PageNum::new(2)).unwrap();
        assert_eq!(pt.mapped_count(), 2);
        // A remap replaces, it does not add.
        pt.map(VirtPage::new(0), PageNum::new(9)).unwrap();
        assert_eq!(pt.mapped_count(), 2);
        assert!(pt.unmap(VirtPage::new(0)).unwrap().is_some());
        assert_eq!(pt.mapped_count(), 1);
        // Unmapping an already-unmapped in-span page is a no-op.
        assert!(pt.unmap(VirtPage::new(0)).unwrap().is_none());
        assert_eq!(pt.mapped_count(), 1);
        assert!(pt.unmap(VirtPage::new(9)).is_err(), "out of span");
    }

    #[test]
    fn iter_yields_only_mapped() {
        let mut pt = PageTable::new(5);
        pt.map(VirtPage::new(1), PageNum::new(10)).unwrap();
        pt.map(VirtPage::new(3), PageNum::new(30)).unwrap();
        let pages: Vec<u64> = pt.iter().map(|(v, _)| v.index()).collect();
        assert_eq!(pages, vec![1, 3]);
        assert_eq!(pt.mapped_count(), 2);
        assert_eq!(pt.span(), 5);
    }
}
