//! The simulated page table.

use neomem_types::json::{hex_from_u64s, Json};
use neomem_types::{Error, PageNum, Result, VirtPage};

/// One page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// The backing physical frame.
    pub frame: PageNum,
    /// Hardware `Accessed` bit: set by the page walker on TLB fill,
    /// cleared and harvested by PTE-scan profilers.
    pub accessed: bool,
    /// Hint-fault poison: the PTE is marked `PROT_NONE`-like so the next
    /// touch faults into the kernel (AutoNUMA / TPP / Thermostat).
    pub poisoned: bool,
    /// Linux's `PG_demoted` page flag as introduced by the paper for
    /// ping-pong severity tracking (§V-A).
    pub demoted: bool,
}

/// Flag bit: the `Accessed` bit (also snapshot bit 0).
const FLAG_ACCESSED: u8 = 1;
/// Flag bit: hint-fault poison (also snapshot bit 1).
const FLAG_POISONED: u8 = 1 << 1;
/// Flag bit: `PG_demoted` (also snapshot bit 2).
const FLAG_DEMOTED: u8 = 1 << 2;
/// Flag bit: the slot is mapped at all. Internal only — snapshots encode
/// mapped-ness as a separate bitmask, so this bit never serialises.
const FLAG_MAPPED: u8 = 1 << 7;

/// A dense page table over virtual pages `0..rss_pages`.
///
/// Virtual pages from the contiguous workload range index two parallel
/// arrays — a `u32` frame number and a `u8` flag byte per page — instead
/// of a `Vec<Option<Pte>>` of 16-byte entries. The translate fast path
/// touches only the 4-byte frame lane; the flag lane carries
/// mapped/accessed/poisoned/demoted bits. Faithfulness is unchanged:
/// 4-level walks are charged in time, not structure.
#[derive(Debug, Clone)]
pub struct PageTable {
    /// Backing frame per virtual page; only meaningful where the
    /// matching `flags` byte has [`FLAG_MAPPED`] set.
    frames: Vec<u32>,
    /// Packed per-page flags; `0` means unmapped.
    flags: Vec<u8>,
    /// Running count of mapped entries, maintained by the mapping paths
    /// so [`mapped_count`](Self::mapped_count) is O(1) instead of a
    /// full-span scan.
    mapped: usize,
}

impl PageTable {
    /// Creates an empty table covering `rss_pages` virtual pages.
    pub fn new(rss_pages: u64) -> Self {
        let n = rss_pages as usize;
        Self { frames: vec![0; n], flags: vec![0; n], mapped: 0 }
    }

    /// Number of virtual pages covered (mapped or not).
    pub fn span(&self) -> u64 {
        self.flags.len() as u64
    }

    /// Number of currently mapped pages.
    pub fn mapped_count(&self) -> usize {
        debug_assert_eq!(
            self.mapped,
            self.flags.iter().filter(|f| **f & FLAG_MAPPED != 0).count(),
            "running mapped counter out of sync with the table"
        );
        self.mapped
    }

    #[inline]
    fn index(&self, vpage: VirtPage) -> Result<usize> {
        let i = vpage.index() as usize;
        if i < self.flags.len() {
            Ok(i)
        } else {
            Err(Error::UnmappedPage { vpn: vpage.index() })
        }
    }

    #[inline]
    fn pte_at(&self, i: usize) -> Pte {
        let flags = self.flags[i];
        Pte {
            frame: PageNum::new(u64::from(self.frames[i])),
            accessed: flags & FLAG_ACCESSED != 0,
            poisoned: flags & FLAG_POISONED != 0,
            demoted: flags & FLAG_DEMOTED != 0,
        }
    }

    #[inline]
    fn frame_bits(frame: PageNum) -> u32 {
        u32::try_from(frame.index()).expect("physical frame number exceeds the u32 frame lane")
    }

    /// Maps `vpage` to `frame`, replacing any existing mapping.
    ///
    /// # Errors
    ///
    /// [`Error::UnmappedPage`] when `vpage` is outside the table span.
    pub fn map(&mut self, vpage: VirtPage, frame: PageNum) -> Result<Option<PageNum>> {
        let i = self.index(vpage)?;
        let old = (self.flags[i] & FLAG_MAPPED != 0)
            .then(|| PageNum::new(u64::from(self.frames[i])));
        self.frames[i] = Self::frame_bits(frame);
        self.flags[i] = FLAG_MAPPED;
        if old.is_none() {
            self.mapped += 1;
        }
        Ok(old)
    }

    /// Unmaps `vpage`, returning the removed PTE if one existed.
    ///
    /// # Errors
    ///
    /// [`Error::UnmappedPage`] when `vpage` is outside the table span.
    pub fn unmap(&mut self, vpage: VirtPage) -> Result<Option<Pte>> {
        let i = self.index(vpage)?;
        if self.flags[i] & FLAG_MAPPED == 0 {
            return Ok(None);
        }
        let old = self.pte_at(i);
        self.frames[i] = 0;
        self.flags[i] = 0;
        self.mapped -= 1;
        Ok(Some(old))
    }

    /// Returns the PTE of `vpage`.
    ///
    /// # Errors
    ///
    /// [`Error::UnmappedPage`] when unmapped or out of span.
    pub fn get(&self, vpage: VirtPage) -> Result<Pte> {
        let i = self.index(vpage)?;
        if self.flags[i] & FLAG_MAPPED != 0 {
            Ok(self.pte_at(i))
        } else {
            Err(Error::UnmappedPage { vpn: vpage.index() })
        }
    }

    /// Whether `vpage` is mapped.
    #[inline]
    pub fn is_mapped(&self, vpage: VirtPage) -> bool {
        matches!(self.flags.get(vpage.index() as usize), Some(f) if f & FLAG_MAPPED != 0)
    }

    /// The backing frame of `vpage`, if mapped — the translate fast path,
    /// touching only the dense frame/flag lanes.
    #[inline]
    pub fn frame_of(&self, vpage: VirtPage) -> Option<PageNum> {
        let i = vpage.index() as usize;
        (matches!(self.flags.get(i), Some(f) if f & FLAG_MAPPED != 0))
            .then(|| PageNum::new(u64::from(self.frames[i])))
    }

    /// Mutates the PTE of `vpage` through `f`.
    ///
    /// # Errors
    ///
    /// [`Error::UnmappedPage`] when unmapped or out of span.
    pub fn update<F: FnOnce(&mut Pte)>(&mut self, vpage: VirtPage, f: F) -> Result<()> {
        let i = self.index(vpage)?;
        if self.flags[i] & FLAG_MAPPED == 0 {
            return Err(Error::UnmappedPage { vpn: vpage.index() });
        }
        let mut pte = self.pte_at(i);
        f(&mut pte);
        self.frames[i] = Self::frame_bits(pte.frame);
        self.flags[i] = FLAG_MAPPED
            | if pte.accessed { FLAG_ACCESSED } else { 0 }
            | if pte.poisoned { FLAG_POISONED } else { 0 }
            | if pte.demoted { FLAG_DEMOTED } else { 0 };
        Ok(())
    }

    /// Sets the `Accessed` bit (page-walker behaviour on TLB fill).
    ///
    /// # Errors
    ///
    /// [`Error::UnmappedPage`] when unmapped.
    #[inline]
    pub fn mark_accessed(&mut self, vpage: VirtPage) -> Result<()> {
        let i = self.index(vpage)?;
        if self.flags[i] & FLAG_MAPPED == 0 {
            return Err(Error::UnmappedPage { vpn: vpage.index() });
        }
        self.flags[i] |= FLAG_ACCESSED;
        Ok(())
    }

    /// Iterates `(vpage, pte)` over all mapped pages.
    pub fn iter(&self) -> impl Iterator<Item = (VirtPage, Pte)> + '_ {
        self.flags
            .iter()
            .enumerate()
            .filter(|(_, f)| *f & FLAG_MAPPED != 0)
            .map(|(i, _)| (VirtPage::new(i as u64), self.pte_at(i)))
    }

    /// Clears every `Accessed` bit and returns how many were set — one
    /// PTE-scan epoch boundary. The caller charges scan time per visited
    /// entry.
    pub fn clear_accessed_bits(&mut self) -> u64 {
        let mut cleared = 0;
        for f in self.flags.iter_mut() {
            if *f & FLAG_ACCESSED != 0 {
                cleared += 1;
                *f &= !FLAG_ACCESSED;
            }
        }
        cleared
    }

    /// Serialises the table for a machine snapshot: a mapped bitmask plus
    /// parallel frame and flag arrays (bit 0 accessed, bit 1 poisoned,
    /// bit 2 demoted).
    pub fn snapshot(&self) -> Json {
        let n = self.flags.len();
        let mut mapped = vec![0u64; n.div_ceil(64)];
        let mut frames = vec![0u64; n];
        let mut flags = vec![0u64; n];
        for (i, f) in self.flags.iter().enumerate() {
            if f & FLAG_MAPPED != 0 {
                mapped[i / 64] |= 1 << (i % 64);
                frames[i] = u64::from(self.frames[i]);
                flags[i] = u64::from(f & (FLAG_ACCESSED | FLAG_POISONED | FLAG_DEMOTED));
            }
        }
        Json::obj([
            ("mapped", Json::Str(hex_from_u64s(&mapped))),
            ("frames", Json::Str(hex_from_u64s(&frames))),
            ("flags", Json::Str(hex_from_u64s(&flags))),
        ])
    }

    /// Restores [`PageTable::snapshot`] state onto a table with the same
    /// span.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] on missing/malformed fields, arrays
    /// sized for a different span, or out-of-range flag bits.
    pub fn restore(&mut self, snap: &Json) -> Result<()> {
        let n = self.flags.len();
        let mapped = snap.req_u64s("mapped")?;
        let frames = snap.req_u64s("frames")?;
        let flags = snap.req_u64s("flags")?;
        if mapped.len() != n.div_ceil(64) || frames.len() != n || flags.len() != n {
            return Err(Error::snapshot(format!(
                "page table snapshot covers {} pages, expected {n}",
                frames.len()
            )));
        }
        let mut count = 0;
        for i in 0..n {
            if (mapped[i / 64] >> (i % 64)) & 1 == 1 {
                if flags[i] > 0b111 {
                    return Err(Error::snapshot(format!("unknown pte flag bits {:#x}", flags[i])));
                }
                let frame = u32::try_from(frames[i]).map_err(|_| {
                    Error::snapshot(format!("frame {:#x} exceeds the u32 frame lane", frames[i]))
                })?;
                self.frames[i] = frame;
                self.flags[i] = FLAG_MAPPED | flags[i] as u8;
                count += 1;
            } else {
                self.frames[i] = 0;
                self.flags[i] = 0;
            }
        }
        self.mapped = count;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_get_round_trip() {
        let mut pt = PageTable::new(4);
        pt.map(VirtPage::new(2), PageNum::new(99)).unwrap();
        let pte = pt.get(VirtPage::new(2)).unwrap();
        assert_eq!(pte.frame, PageNum::new(99));
        assert!(!pte.accessed && !pte.poisoned && !pte.demoted);
        assert_eq!(pt.frame_of(VirtPage::new(2)), Some(PageNum::new(99)));
        assert_eq!(pt.frame_of(VirtPage::new(1)), None);
        assert_eq!(pt.frame_of(VirtPage::new(9)), None);
    }

    #[test]
    fn unmapped_and_out_of_span_error() {
        let pt = PageTable::new(4);
        assert_eq!(pt.get(VirtPage::new(1)), Err(Error::UnmappedPage { vpn: 1 }));
        assert_eq!(pt.get(VirtPage::new(9)), Err(Error::UnmappedPage { vpn: 9 }));
        assert!(!pt.is_mapped(VirtPage::new(1)));
        assert!(!pt.is_mapped(VirtPage::new(9)));
    }

    #[test]
    fn remap_returns_old_frame() {
        let mut pt = PageTable::new(2);
        assert_eq!(pt.map(VirtPage::new(0), PageNum::new(1)).unwrap(), None);
        assert_eq!(pt.map(VirtPage::new(0), PageNum::new(2)).unwrap(), Some(PageNum::new(1)));
    }

    #[test]
    fn remap_clears_old_flags() {
        let mut pt = PageTable::new(1);
        pt.map(VirtPage::new(0), PageNum::new(1)).unwrap();
        pt.update(VirtPage::new(0), |pte| {
            pte.accessed = true;
            pte.demoted = true;
        })
        .unwrap();
        pt.map(VirtPage::new(0), PageNum::new(2)).unwrap();
        let pte = pt.get(VirtPage::new(0)).unwrap();
        assert!(!pte.accessed && !pte.poisoned && !pte.demoted, "fresh mapping, fresh flags");
    }

    #[test]
    fn accessed_bit_lifecycle() {
        let mut pt = PageTable::new(3);
        for i in 0..3 {
            pt.map(VirtPage::new(i), PageNum::new(i)).unwrap();
        }
        pt.mark_accessed(VirtPage::new(0)).unwrap();
        pt.mark_accessed(VirtPage::new(2)).unwrap();
        assert_eq!(pt.clear_accessed_bits(), 2);
        assert_eq!(pt.clear_accessed_bits(), 0, "second scan sees nothing");
        assert!(!pt.get(VirtPage::new(0)).unwrap().accessed);
    }

    #[test]
    fn update_flags() {
        let mut pt = PageTable::new(1);
        pt.map(VirtPage::new(0), PageNum::new(5)).unwrap();
        pt.update(VirtPage::new(0), |pte| {
            pte.poisoned = true;
            pte.demoted = true;
        })
        .unwrap();
        let pte = pt.get(VirtPage::new(0)).unwrap();
        assert!(pte.poisoned && pte.demoted);
    }

    #[test]
    fn mapped_count_tracks_map_remap_unmap() {
        let mut pt = PageTable::new(4);
        assert_eq!(pt.mapped_count(), 0);
        pt.map(VirtPage::new(0), PageNum::new(1)).unwrap();
        pt.map(VirtPage::new(2), PageNum::new(2)).unwrap();
        assert_eq!(pt.mapped_count(), 2);
        // A remap replaces, it does not add.
        pt.map(VirtPage::new(0), PageNum::new(9)).unwrap();
        assert_eq!(pt.mapped_count(), 2);
        assert!(pt.unmap(VirtPage::new(0)).unwrap().is_some());
        assert_eq!(pt.mapped_count(), 1);
        // Unmapping an already-unmapped in-span page is a no-op.
        assert!(pt.unmap(VirtPage::new(0)).unwrap().is_none());
        assert_eq!(pt.mapped_count(), 1);
        assert!(pt.unmap(VirtPage::new(9)).is_err(), "out of span");
    }

    #[test]
    fn iter_yields_only_mapped() {
        let mut pt = PageTable::new(5);
        pt.map(VirtPage::new(1), PageNum::new(10)).unwrap();
        pt.map(VirtPage::new(3), PageNum::new(30)).unwrap();
        let pages: Vec<u64> = pt.iter().map(|(v, _)| v.index()).collect();
        assert_eq!(pages, vec![1, 3]);
        assert_eq!(pt.mapped_count(), 2);
        assert_eq!(pt.span(), 5);
    }
}
