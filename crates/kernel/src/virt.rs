//! Virtualization support (paper §VII "Virtualization Support").
//!
//! In a virtualised deployment, NeoMem runs in the *host*: the NeoMem
//! daemon identifies hot **host-physical** pages, migrates them, and
//! then the guests' Extended Page Tables (EPT) are remapped so guest-
//! physical addresses follow the data to its new frame. The paper
//! leaves evaluation to future work but describes the mechanism; this
//! module implements it so virtualised experiments can be composed:
//!
//! * [`EptMap`] — one guest's gPA → hPA second-stage table with dirty
//!   remap accounting.
//! * [`VirtLayer`] — a set of guests multiplexed over the host address
//!   space; translates guest accesses and applies post-migration
//!   remaps (the `vtmm`-style flow the paper cites).

use std::collections::HashMap;

use neomem_types::{Error, Nanos, Result, VirtPage};

/// A guest identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GuestId(pub u8);

/// One guest's second-stage (EPT) mapping: guest-physical page →
/// host *virtual* page (which the host kernel maps onto frames; frame
/// moves are invisible here, only host-page reassignments remap).
#[derive(Debug, Clone, Default)]
pub struct EptMap {
    entries: HashMap<u64, VirtPage>,
    remaps: u64,
}

impl EptMap {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps guest page `gpa` to host page `hpage`.
    pub fn map(&mut self, gpa: u64, hpage: VirtPage) {
        self.entries.insert(gpa, hpage);
    }

    /// Translates a guest-physical page.
    ///
    /// # Errors
    ///
    /// [`Error::UnmappedPage`] when the guest page has no EPT entry.
    pub fn translate(&self, gpa: u64) -> Result<VirtPage> {
        self.entries.get(&gpa).copied().ok_or(Error::UnmappedPage { vpn: gpa })
    }

    /// Points every guest mapping of `old` at `new` (post-migration
    /// remap). Returns how many entries changed.
    pub fn remap(&mut self, old: VirtPage, new: VirtPage) -> u64 {
        let mut changed = 0;
        for target in self.entries.values_mut() {
            if *target == old {
                *target = new;
                changed += 1;
            }
        }
        self.remaps += changed;
        changed
    }

    /// Total remapped entries over the guest's lifetime.
    pub fn remaps(&self) -> u64 {
        self.remaps
    }

    /// Number of mapped guest pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Cost of one EPT remap (EPT entry rewrite + guest TLB invalidation).
pub const EPT_REMAP_COST: Nanos = Nanos::from_micros(1);

/// A set of guests sharing the host address space.
///
/// The host partitions its (simulated) virtual address space among
/// guests; NeoMem profiles and migrates *host* pages exactly as in the
/// bare-metal flow, then [`VirtLayer::after_migration`] propagates the
/// change into every affected guest's EPT.
#[derive(Debug, Clone, Default)]
pub struct VirtLayer {
    guests: HashMap<GuestId, EptMap>,
}

impl VirtLayer {
    /// Creates an empty layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a guest with an identity-offset mapping of
    /// `pages` guest pages starting at host page `host_base`.
    pub fn add_guest(&mut self, id: GuestId, host_base: VirtPage, pages: u64) {
        let mut ept = EptMap::new();
        for gpa in 0..pages {
            ept.map(gpa, host_base.offset(gpa));
        }
        self.guests.insert(id, ept);
    }

    /// Borrows a guest's EPT.
    pub fn guest(&self, id: GuestId) -> Option<&EptMap> {
        self.guests.get(&id)
    }

    /// Translates a guest access to the host page NeoMem reasons about.
    ///
    /// # Errors
    ///
    /// [`Error::UnmappedPage`] for unknown guests or unmapped guest
    /// pages.
    pub fn translate(&self, id: GuestId, gpa: u64) -> Result<VirtPage> {
        self.guests.get(&id).ok_or(Error::UnmappedPage { vpn: gpa })?.translate(gpa)
    }

    /// Propagates a host-page reassignment into every guest; returns
    /// the total time charged for EPT rewrites.
    pub fn after_migration(&mut self, old: VirtPage, new: VirtPage) -> Nanos {
        let mut changed = 0;
        for ept in self.guests.values_mut() {
            changed += ept.remap(old, new);
        }
        EPT_REMAP_COST * changed
    }

    /// Number of registered guests.
    pub fn guest_count(&self) -> usize {
        self.guests.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_offset_mapping() {
        let mut layer = VirtLayer::new();
        layer.add_guest(GuestId(0), VirtPage::new(0), 16);
        layer.add_guest(GuestId(1), VirtPage::new(16), 16);
        assert_eq!(layer.translate(GuestId(0), 3).unwrap(), VirtPage::new(3));
        assert_eq!(layer.translate(GuestId(1), 3).unwrap(), VirtPage::new(19));
        assert_eq!(layer.guest_count(), 2);
    }

    #[test]
    fn unknown_guest_or_page_errors() {
        let mut layer = VirtLayer::new();
        layer.add_guest(GuestId(0), VirtPage::new(0), 4);
        assert!(layer.translate(GuestId(9), 0).is_err());
        assert!(layer.translate(GuestId(0), 99).is_err());
    }

    #[test]
    fn migration_remaps_only_affected_guest() {
        let mut layer = VirtLayer::new();
        layer.add_guest(GuestId(0), VirtPage::new(0), 8);
        layer.add_guest(GuestId(1), VirtPage::new(8), 8);
        // Host "moves" page 3 to a new host page 100 (e.g. huge-page
        // split or copy-on-migrate indirection).
        let cost = layer.after_migration(VirtPage::new(3), VirtPage::new(100));
        assert_eq!(cost, EPT_REMAP_COST);
        assert_eq!(layer.translate(GuestId(0), 3).unwrap(), VirtPage::new(100));
        // Guest 1 untouched.
        assert_eq!(layer.translate(GuestId(1), 3).unwrap(), VirtPage::new(11));
        assert_eq!(layer.guest(GuestId(0)).unwrap().remaps(), 1);
        assert_eq!(layer.guest(GuestId(1)).unwrap().remaps(), 0);
    }

    #[test]
    fn remap_of_unmapped_page_is_free() {
        let mut layer = VirtLayer::new();
        layer.add_guest(GuestId(0), VirtPage::new(0), 4);
        let cost = layer.after_migration(VirtPage::new(77), VirtPage::new(78));
        assert_eq!(cost, Nanos::ZERO);
    }

    #[test]
    fn ept_len_and_empty() {
        let mut ept = EptMap::new();
        assert!(ept.is_empty());
        ept.map(0, VirtPage::new(5));
        assert_eq!(ept.len(), 1);
        assert!(!ept.is_empty());
    }
}
