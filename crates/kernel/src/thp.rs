//! Transparent Huge Page (THP) grouping.
//!
//! The paper's Table VI experiment enables THP: base pages consolidate
//! into 2 MiB huge pages, and NeoMem migrates whole huge pages when the
//! profiled hot 4 KiB pages fall inside them (§VII "Huge Page Support").
//! We model THP as virtual-address grouping: 512 consecutive base pages
//! aligned to a 512-page boundary form one huge region.

use std::collections::HashMap;

use neomem_types::json::{hex_from_u64s, Json};
use neomem_types::{Error, Result, VirtPage};

/// Base pages per 2 MiB huge page.
pub const PAGES_PER_HUGE: u64 = 512;

/// The first base page of the huge region containing `vpage`.
pub fn huge_base(vpage: VirtPage) -> VirtPage {
    VirtPage::new(vpage.index() / PAGES_PER_HUGE * PAGES_PER_HUGE)
}

/// Tracks which huge regions are THP-backed and their hot-page votes.
///
/// NeoProf keeps reporting hot 4 KiB pages; the host aggregates them per
/// huge region and migrates the region once enough distinct hot base
/// pages accumulate.
#[derive(Debug, Clone, Default)]
pub struct HugePageMap {
    /// Hot votes per huge-region base page.
    votes: HashMap<u64, u32>,
    /// Distinct hot base pages needed before a huge migration triggers.
    vote_threshold: u32,
}

impl HugePageMap {
    /// Creates a map requiring `vote_threshold` hot base-page reports per
    /// region before the region is offered for huge migration.
    ///
    /// # Panics
    ///
    /// Panics if `vote_threshold` is zero.
    pub fn new(vote_threshold: u32) -> Self {
        assert!(vote_threshold > 0, "vote threshold must be positive");
        Self { votes: HashMap::new(), vote_threshold }
    }

    /// Records a hot base page; returns `Some(region_base)` when the
    /// containing region just crossed the vote threshold.
    pub fn record_hot(&mut self, vpage: VirtPage) -> Option<VirtPage> {
        let base = huge_base(vpage);
        let votes = self.votes.entry(base.index()).or_insert(0);
        *votes += 1;
        if *votes == self.vote_threshold {
            Some(base)
        } else {
            None
        }
    }

    /// Current votes for the region containing `vpage`.
    pub fn votes_for(&self, vpage: VirtPage) -> u32 {
        self.votes.get(&huge_base(vpage).index()).copied().unwrap_or(0)
    }

    /// Clears vote state (per profiling period).
    pub fn clear(&mut self) {
        self.votes.clear();
    }

    /// Iterates the base pages of one huge region.
    pub fn region_pages(base: VirtPage) -> impl Iterator<Item = VirtPage> {
        let start = huge_base(base).index();
        (start..start + PAGES_PER_HUGE).map(VirtPage::new)
    }

    /// Serialises the vote table for a machine snapshot, as interleaved
    /// `(region_base, votes)` pairs sorted by base so the rendering is
    /// independent of hash-map iteration order.
    pub fn snapshot(&self) -> Json {
        let mut pairs: Vec<(u64, u32)> = self.votes.iter().map(|(&b, &v)| (b, v)).collect();
        pairs.sort_unstable();
        let flat: Vec<u64> = pairs.iter().flat_map(|&(b, v)| [b, u64::from(v)]).collect();
        Json::obj([("votes", Json::Str(hex_from_u64s(&flat)))])
    }

    /// Restores [`HugePageMap::snapshot`] state. The vote threshold is
    /// construction config and is kept as-is.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] on missing/malformed fields, an
    /// odd-length pair array, or a vote count exceeding `u32`.
    pub fn restore(&mut self, snap: &Json) -> Result<()> {
        let flat = snap.req_u64s("votes")?;
        if flat.len() % 2 != 0 {
            return Err(Error::snapshot("odd-length huge-page vote array"));
        }
        let mut votes = HashMap::with_capacity(flat.len() / 2);
        for pair in flat.chunks_exact(2) {
            let count = u32::try_from(pair[1])
                .map_err(|_| Error::snapshot(format!("vote count {} exceeds u32", pair[1])))?;
            votes.insert(pair[0], count);
        }
        self.votes = votes;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn huge_base_alignment() {
        assert_eq!(huge_base(VirtPage::new(0)).index(), 0);
        assert_eq!(huge_base(VirtPage::new(511)).index(), 0);
        assert_eq!(huge_base(VirtPage::new(512)).index(), 512);
        assert_eq!(huge_base(VirtPage::new(1300)).index(), 1024);
    }

    #[test]
    fn votes_trigger_once_at_threshold() {
        let mut m = HugePageMap::new(3);
        assert_eq!(m.record_hot(VirtPage::new(10)), None);
        assert_eq!(m.record_hot(VirtPage::new(20)), None);
        assert_eq!(m.record_hot(VirtPage::new(30)), Some(VirtPage::new(0)));
        // Further votes do not re-trigger.
        assert_eq!(m.record_hot(VirtPage::new(40)), None);
        assert_eq!(m.votes_for(VirtPage::new(11)), 4);
    }

    #[test]
    fn regions_are_independent() {
        let mut m = HugePageMap::new(1);
        assert_eq!(m.record_hot(VirtPage::new(5)), Some(VirtPage::new(0)));
        assert_eq!(m.record_hot(VirtPage::new(600)), Some(VirtPage::new(512)));
    }

    #[test]
    fn clear_resets_votes() {
        let mut m = HugePageMap::new(2);
        m.record_hot(VirtPage::new(1));
        m.clear();
        assert_eq!(m.votes_for(VirtPage::new(1)), 0);
        assert_eq!(m.record_hot(VirtPage::new(1)), None, "count restarts");
    }

    #[test]
    fn region_pages_covers_512() {
        let pages: Vec<_> = HugePageMap::region_pages(VirtPage::new(700)).collect();
        assert_eq!(pages.len(), 512);
        assert_eq!(pages[0].index(), 512);
        assert_eq!(pages[511].index(), 1023);
    }

    #[test]
    #[should_panic(expected = "vote threshold")]
    fn zero_threshold_rejected() {
        let _ = HugePageMap::new(0);
    }
}
