//! The kernel facade: allocation, translation, promotion and demotion.

use neomem_mem::{TieredMemory, TieredMemoryConfig};
use neomem_types::json::Json;
use neomem_types::{Bytes, Error, Nanos, PageNum, Result, Tier, VirtPage, PAGE_SIZE};

use crate::lru2q::Lru2Q;
use crate::page_table::PageTable;

/// Time charges for kernel memory-management operations.
///
/// Values are in the range measured for Linux `migrate_pages()` and
/// fault handling on recent x86 servers; they are deliberately explicit
/// so sensitivity studies can sweep them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationCosts {
    /// Fixed kernel overhead per migrated base page (rmap walk, PTE
    /// update, page-copy setup).
    pub per_page_overhead: Nanos,
    /// One TLB shootdown (IPI round-trip).
    pub tlb_shootdown: Nanos,
    /// Fixed overhead per migrated 2 MiB huge page.
    pub huge_page_overhead: Nanos,
    /// Minor fault service time (first touch).
    pub minor_fault: Nanos,
    /// Hint fault service time (poisoned-PTE protection fault +
    /// shootdown), per the paper's "costly TLB shootdown and page fault".
    pub hint_fault: Nanos,
    /// Fraction of migration work charged to the application's critical
    /// path, in percent (0–100). Page migration runs on kernel threads
    /// that overlap with the 32 application threads of the paper's
    /// testbed; only bandwidth contention and a slice of CPU time are
    /// felt by the workload.
    pub migration_cpu_charge_pct: u8,
}

impl Default for MigrationCosts {
    fn default() -> Self {
        Self {
            per_page_overhead: Nanos::from_micros(2),
            tlb_shootdown: Nanos::new(800),
            huge_page_overhead: Nanos::from_micros(12),
            minor_fault: Nanos::new(900),
            hint_fault: Nanos::from_micros(3),
            migration_cpu_charge_pct: 10,
        }
    }
}

/// Kernel construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct KernelConfig {
    /// The tiered physical memory.
    pub memory: TieredMemoryConfig,
    /// Virtual pages covered by the (single) address space.
    pub rss_pages: u64,
    /// Time charges.
    pub costs: MigrationCosts,
}

impl KernelConfig {
    /// Convenience config: given frame counts, covers an address space
    /// equal to the total physical capacity.
    pub fn with_frames(fast: u64, slow: u64) -> Self {
        Self {
            memory: TieredMemoryConfig::with_frames(fast, slow),
            rss_pages: fast + slow,
            costs: MigrationCosts::default(),
        }
    }
}

/// Kernel event counters (the `/proc/vmstat`-style numbers Fig. 13
/// reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Pages promoted slow → fast (`pgpromote_success`).
    pub promotions: u64,
    /// Pages demoted fast → slow (`pgdemote_*`).
    pub demotions: u64,
    /// Promotions of pages carrying `PG_demoted` — ping-pong events.
    pub ping_pongs: u64,
    /// Bytes moved upward.
    pub promoted_bytes: Bytes,
    /// Bytes moved downward.
    pub demoted_bytes: Bytes,
    /// Promotions rejected for lack of fast-tier space.
    pub failed_promotions: u64,
    /// Minor (first-touch) faults.
    pub minor_faults: u64,
    /// Hint (poison) faults serviced.
    pub hint_faults: u64,
    /// Total time spent inside migration paths.
    pub migration_time: Nanos,
}

/// The simulated kernel: page table + tiered memory + LRU-2Q + counters.
#[derive(Debug, Clone)]
pub struct Kernel {
    memory: TieredMemory,
    page_table: PageTable,
    lru: Lru2Q,
    costs: MigrationCosts,
    stats: KernelStats,
    /// Reverse map: frame index → owning virtual page (the kernel's rmap,
    /// needed to translate NeoProf's device page reports back to pages
    /// the migration API understands).
    rmap: Vec<Option<VirtPage>>,
    /// Rotating cursor for LRU-free victim selection (ablation).
    arbitrary_cursor: u64,
}

impl Kernel {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics on an invalid memory config; pre-validate with
    /// [`TieredMemoryConfig::validate`].
    pub fn new(config: KernelConfig) -> Self {
        let total_frames =
            (config.memory.fast.capacity_frames + config.memory.slow.capacity_frames) as usize;
        Self {
            memory: TieredMemory::new(config.memory),
            page_table: PageTable::new(config.rss_pages),
            lru: Lru2Q::new(),
            costs: config.costs,
            stats: KernelStats::default(),
            rmap: vec![None; total_frames],
            arbitrary_cursor: 0,
        }
    }

    /// Reverse-maps a physical frame to the virtual page it backs.
    pub fn vpage_of(&self, frame: PageNum) -> Option<VirtPage> {
        self.rmap.get(frame.index() as usize).copied().flatten()
    }

    /// Translates a virtual page.
    ///
    /// # Errors
    ///
    /// [`Error::UnmappedPage`] when not yet touched.
    pub fn translate(&self, vpage: VirtPage) -> Result<PageNum> {
        Ok(self.page_table.get(vpage)?.frame)
    }

    /// The tier currently backing `vpage`.
    ///
    /// # Errors
    ///
    /// [`Error::UnmappedPage`] when not mapped.
    pub fn tier_of(&self, vpage: VirtPage) -> Result<Tier> {
        Ok(self.memory.tier_of(self.translate(vpage)?))
    }

    /// First-touch allocation: maps `vpage` on the fast tier while it has
    /// space, spilling to the CXL node afterwards (Linux default policy,
    /// also the First-touch NUMA baseline).
    ///
    /// Returns the backing frame (existing mapping is returned as-is).
    ///
    /// # Errors
    ///
    /// [`Error::OutOfMemory`] when both tiers are exhausted.
    pub fn touch_alloc(&mut self, vpage: VirtPage, now: Nanos) -> Result<PageNum> {
        self.touch_alloc_preferring(vpage, Tier::Fast, now)
    }

    /// First-touch allocation with an explicit tier preference (pinned
    /// baselines allocate everything on one tier; Fig. 3b).
    ///
    /// # Errors
    ///
    /// [`Error::OutOfMemory`] when both tiers are exhausted.
    pub fn touch_alloc_preferring(
        &mut self,
        vpage: VirtPage,
        preferred: Tier,
        _now: Nanos,
    ) -> Result<PageNum> {
        if let Ok(pte) = self.page_table.get(vpage) {
            return Ok(pte.frame);
        }
        let frame = self.memory.alloc_preferring(preferred)?;
        self.page_table.map(vpage, frame)?;
        self.rmap[frame.index() as usize] = Some(vpage);
        self.stats.minor_faults += 1;
        if self.memory.tier_of(frame).is_fast() {
            self.lru.insert(vpage);
        }
        Ok(frame)
    }

    /// Time charge of one minor fault (the simulator adds it to the clock
    /// when [`touch_alloc`](Self::touch_alloc) created a new mapping).
    pub fn minor_fault_cost(&self) -> Nanos {
        self.costs.minor_fault
    }

    /// Records an access for LRU aging (call on fast-tier accesses).
    pub fn record_fast_access(&mut self, vpage: VirtPage) {
        self.lru.on_access(vpage);
    }

    /// Moves `vpage` from slow to fast, demoting a cold page first when
    /// the fast tier is full. Returns the time charged.
    ///
    /// # Errors
    ///
    /// [`Error::MigrationRejected`] when the page is already fast or no
    /// space can be made; [`Error::UnmappedPage`] when unmapped.
    pub fn promote(&mut self, vpage: VirtPage, now: Nanos) -> Result<Nanos> {
        let pte = self.page_table.get(vpage)?;
        if self.memory.tier_of(pte.frame).is_fast() {
            return Err(Error::MigrationRejected { reason: format!("{vpage} already on fast tier") });
        }
        let mut elapsed = Nanos::ZERO;
        // Make room: demote the coldest page if the fast tier is full.
        if self.memory.allocator(Tier::Fast).free_frames() == 0 {
            let victims = self.lru.pop_coldest(1);
            match victims.first() {
                Some(&victim) => elapsed += self.demote(victim, now)?,
                None => {
                    self.stats.failed_promotions += 1;
                    return Err(Error::MigrationRejected {
                        reason: "fast tier full and no LRU victim available".into(),
                    });
                }
            }
        }
        let new_frame = match self.memory.allocator_mut(Tier::Fast).alloc() {
            Ok(f) => f,
            Err(_) => {
                self.stats.failed_promotions += 1;
                return Err(Error::MigrationRejected { reason: "fast tier still full".into() });
            }
        };
        elapsed += self.move_page(vpage, new_frame, now + elapsed)?;
        self.stats.promotions += 1;
        self.stats.promoted_bytes += Bytes::new(PAGE_SIZE);
        // Ping-pong: this page had been demoted earlier and came back.
        let mut was_demoted = false;
        self.page_table.update(vpage, |pte| {
            was_demoted = pte.demoted;
            pte.demoted = false;
        })?;
        if was_demoted {
            self.stats.ping_pongs += 1;
        }
        // A promoted page is hot by definition: place it on the active
        // list (Linux promotes onto the active LRU), not probation —
        // otherwise the next headroom demotion would evict exactly the
        // pages just promoted (instant ping-pong).
        self.lru.insert(vpage);
        self.lru.on_access(vpage);
        self.stats.migration_time += elapsed;
        Ok(elapsed)
    }

    /// Moves `vpage` from fast to slow, setting `PG_demoted`.
    /// Returns the time charged.
    ///
    /// # Errors
    ///
    /// [`Error::MigrationRejected`] when already slow,
    /// [`Error::OutOfMemory`] when the CXL node is full,
    /// [`Error::UnmappedPage`] when unmapped.
    pub fn demote(&mut self, vpage: VirtPage, now: Nanos) -> Result<Nanos> {
        let pte = self.page_table.get(vpage)?;
        if self.memory.tier_of(pte.frame).is_slow() {
            return Err(Error::MigrationRejected { reason: format!("{vpage} already on slow tier") });
        }
        let new_frame = self.memory.allocator_mut(Tier::Slow).alloc()?;
        let elapsed = self.move_page(vpage, new_frame, now)?;
        self.stats.demotions += 1;
        self.stats.demoted_bytes += Bytes::new(PAGE_SIZE);
        self.page_table.update(vpage, |pte| pte.demoted = true)?;
        self.lru.remove(vpage);
        self.stats.migration_time += elapsed;
        Ok(elapsed)
    }

    /// Demotes up to `n` fast-resident pages chosen *without* recency
    /// information — the "random demotion" ablation contrasted with
    /// LRU-2Q victim selection (DESIGN.md decision #5). A rotating
    /// cursor over the fast frame window keeps it deterministic.
    pub fn demote_arbitrary(&mut self, n: usize, now: Nanos) -> (Vec<VirtPage>, Nanos) {
        let fast_frames = self.memory.allocator(Tier::Fast).capacity();
        let mut total = Nanos::ZERO;
        let mut demoted = Vec::new();
        let mut scanned = 0;
        while demoted.len() < n && scanned < fast_frames {
            // A co-prime stride visits all frames in a shuffled order.
            self.arbitrary_cursor = (self.arbitrary_cursor + 97) % fast_frames;
            scanned += 1;
            let frame = PageNum::new(self.arbitrary_cursor);
            let Some(vpage) = self.vpage_of(frame) else { continue };
            if let Ok(t) = self.demote(vpage, now + total) {
                total += t;
                demoted.push(vpage);
            }
        }
        (demoted, total)
    }

    /// Demotes up to `n` LRU-cold pages; returns the victims and the
    /// total time charged.
    pub fn demote_coldest(&mut self, n: usize, now: Nanos) -> (Vec<VirtPage>, Nanos) {
        let mut total = Nanos::ZERO;
        let mut demoted = Vec::new();
        for victim in self.lru.pop_coldest(n) {
            if let Ok(t) = self.demote(victim, now + total) {
                total += t;
                demoted.push(victim);
            }
        }
        (demoted, total)
    }

    /// Copies the page to `new_frame`, updates the PTE and frees the old
    /// frame. Charges copy bandwidth on both nodes plus fixed overheads.
    fn move_page(&mut self, vpage: VirtPage, new_frame: PageNum, now: Nanos) -> Result<Nanos> {
        let old_pte = self.page_table.get(vpage)?;
        let old_frame = old_pte.frame;
        let bytes = Bytes::new(PAGE_SIZE);
        let src_tier = self.memory.tier_of(old_frame);
        let dst_tier = self.memory.tier_of(new_frame);
        let t_src = self.memory.node_mut(src_tier).bulk_transfer(bytes, now);
        let t_dst = self.memory.node_mut(dst_tier).bulk_transfer(bytes, now);
        // Remap, preserving page flags across the move (migration copies
        // page state; only the frame changes).
        self.page_table.map(vpage, new_frame)?;
        self.page_table.update(vpage, |pte| {
            pte.accessed = old_pte.accessed;
            pte.poisoned = old_pte.poisoned;
            pte.demoted = old_pte.demoted;
        })?;
        self.memory.free(old_frame);
        self.rmap[old_frame.index() as usize] = None;
        self.rmap[new_frame.index() as usize] = Some(vpage);
        // The copy streams through migration kthreads: source read and
        // destination write overlap, so the slower channel dominates;
        // only the configured fraction lands on the app's critical path
        // (bandwidth contention was already charged to the nodes above).
        let full = t_src.max(t_dst) + self.costs.per_page_overhead + self.costs.tlb_shootdown;
        Ok(full.scale(self.costs.migration_cpu_charge_pct.min(100) as f64 / 100.0))
    }

    /// Records a serviced hint fault and returns its time charge.
    pub fn service_hint_fault(&mut self, vpage: VirtPage) -> Result<Nanos> {
        self.page_table.update(vpage, |pte| pte.poisoned = false)?;
        self.stats.hint_faults += 1;
        Ok(self.costs.hint_fault)
    }

    /// The reverse map of the fast tier, frame-indexed: `rmap[f]` is the
    /// virtual page backed by fast frame `f`, or `None` while the frame
    /// is free. Lets occupancy accounting sweep the fast tier as one
    /// dense slice instead of per-frame lookups.
    pub fn fast_rmap(&self) -> &[Option<VirtPage>] {
        &self.rmap[..self.memory.slow_base().index() as usize]
    }

    /// Borrows the page table.
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Mutably borrows the page table (profilers poison PTEs, scanners
    /// clear accessed bits).
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }

    /// Borrows the tiered memory.
    pub fn memory(&self) -> &TieredMemory {
        &self.memory
    }

    /// Mutably borrows the tiered memory.
    pub fn memory_mut(&mut self) -> &mut TieredMemory {
        &mut self.memory
    }

    /// Borrows the LRU-2Q structure.
    pub fn lru(&self) -> &Lru2Q {
        &self.lru
    }

    /// The configured time charges.
    pub fn costs(&self) -> &MigrationCosts {
        &self.costs
    }

    /// Kernel event counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Serialises the kernel's full mutable state (memory, page table,
    /// LRU, counters) for a machine snapshot. The rmap is not stored —
    /// it is the inverse of the page table and is rebuilt on restore.
    pub fn snapshot(&self) -> Json {
        Json::obj([
            ("memory", self.memory.snapshot()),
            ("page_table", self.page_table.snapshot()),
            ("lru", self.lru.snapshot()),
            ("promotions", Json::U64(self.stats.promotions)),
            ("demotions", Json::U64(self.stats.demotions)),
            ("ping_pongs", Json::U64(self.stats.ping_pongs)),
            ("promoted_bytes", Json::U64(self.stats.promoted_bytes.as_u64())),
            ("demoted_bytes", Json::U64(self.stats.demoted_bytes.as_u64())),
            ("failed_promotions", Json::U64(self.stats.failed_promotions)),
            ("minor_faults", Json::U64(self.stats.minor_faults)),
            ("hint_faults", Json::U64(self.stats.hint_faults)),
            ("migration_time", Json::U64(self.stats.migration_time.as_nanos())),
            ("arbitrary_cursor", Json::U64(self.arbitrary_cursor)),
        ])
    }

    /// Restores [`Kernel::snapshot`] state onto a kernel built with the
    /// same configuration, rebuilding the rmap from the page table.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] on missing/malformed fields, component
    /// state sized for a different configuration, a mapped frame outside
    /// the physical frame space, or two pages mapped to one frame.
    pub fn restore(&mut self, snap: &Json) -> Result<()> {
        self.memory.restore(snap.req("memory")?)?;
        self.page_table.restore(snap.req("page_table")?)?;
        self.lru.restore(snap.req("lru")?)?;
        self.stats = KernelStats {
            promotions: snap.req_u64("promotions")?,
            demotions: snap.req_u64("demotions")?,
            ping_pongs: snap.req_u64("ping_pongs")?,
            promoted_bytes: Bytes::new(snap.req_u64("promoted_bytes")?),
            demoted_bytes: Bytes::new(snap.req_u64("demoted_bytes")?),
            failed_promotions: snap.req_u64("failed_promotions")?,
            minor_faults: snap.req_u64("minor_faults")?,
            hint_faults: snap.req_u64("hint_faults")?,
            migration_time: Nanos::new(snap.req_u64("migration_time")?),
        };
        self.arbitrary_cursor = snap.req_u64("arbitrary_cursor")?;
        self.rmap.fill(None);
        for (vpage, pte) in self.page_table.iter() {
            let idx = pte.frame.index() as usize;
            let slot = self.rmap.get_mut(idx).ok_or_else(|| {
                Error::snapshot(format!("pte frame {} outside physical frame space", pte.frame))
            })?;
            if slot.is_some() {
                return Err(Error::snapshot(format!("frame {} backs two virtual pages", pte.frame)));
            }
            *slot = Some(vpage);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(fast: u64, slow: u64) -> Kernel {
        Kernel::new(KernelConfig::with_frames(fast, slow))
    }

    #[test]
    fn first_touch_prefers_fast() {
        let mut k = kernel(2, 4);
        for i in 0..2 {
            k.touch_alloc(VirtPage::new(i), Nanos::ZERO).unwrap();
            assert_eq!(k.tier_of(VirtPage::new(i)).unwrap(), Tier::Fast);
        }
        k.touch_alloc(VirtPage::new(2), Nanos::ZERO).unwrap();
        assert_eq!(k.tier_of(VirtPage::new(2)).unwrap(), Tier::Slow, "spill after fast fills");
        assert_eq!(k.stats().minor_faults, 3);
    }

    #[test]
    fn touch_alloc_idempotent() {
        let mut k = kernel(2, 2);
        let f1 = k.touch_alloc(VirtPage::new(0), Nanos::ZERO).unwrap();
        let f2 = k.touch_alloc(VirtPage::new(0), Nanos::ZERO).unwrap();
        assert_eq!(f1, f2);
        assert_eq!(k.stats().minor_faults, 1);
    }

    #[test]
    fn promote_demote_round_trip_counts_ping_pong() {
        let mut k = kernel(2, 4);
        let vp = VirtPage::new(0);
        k.touch_alloc(vp, Nanos::ZERO).unwrap();
        k.demote(vp, Nanos::ZERO).unwrap();
        assert_eq!(k.tier_of(vp).unwrap(), Tier::Slow);
        assert!(k.page_table().get(vp).unwrap().demoted, "PG_demoted set");
        k.promote(vp, Nanos::ZERO).unwrap();
        assert_eq!(k.tier_of(vp).unwrap(), Tier::Fast);
        let s = k.stats();
        assert_eq!(s.promotions, 1);
        assert_eq!(s.demotions, 1);
        assert_eq!(s.ping_pongs, 1);
        assert!(!k.page_table().get(vp).unwrap().demoted, "flag cleared on promote");
    }

    #[test]
    fn first_promotion_is_not_ping_pong() {
        let mut k = kernel(2, 4);
        // Fill fast so page 2 spills to slow on first touch.
        for i in 0..3 {
            k.touch_alloc(VirtPage::new(i), Nanos::ZERO).unwrap();
        }
        k.promote(VirtPage::new(2), Nanos::ZERO).unwrap();
        assert_eq!(k.stats().ping_pongs, 0);
    }

    #[test]
    fn promote_when_full_auto_demotes_coldest() {
        let mut k = kernel(2, 4);
        k.touch_alloc(VirtPage::new(0), Nanos::ZERO).unwrap(); // fast, cold
        k.touch_alloc(VirtPage::new(1), Nanos::ZERO).unwrap(); // fast
        k.record_fast_access(VirtPage::new(1)); // 1 is warmer than 0
        k.touch_alloc(VirtPage::new(2), Nanos::ZERO).unwrap(); // slow
        k.promote(VirtPage::new(2), Nanos::ZERO).unwrap();
        assert_eq!(k.tier_of(VirtPage::new(2)).unwrap(), Tier::Fast);
        assert_eq!(k.tier_of(VirtPage::new(0)).unwrap(), Tier::Slow, "cold page evicted");
        assert_eq!(k.tier_of(VirtPage::new(1)).unwrap(), Tier::Fast, "warm page kept");
        assert_eq!(k.stats().demotions, 1);
    }

    #[test]
    fn promote_already_fast_rejected() {
        let mut k = kernel(2, 2);
        k.touch_alloc(VirtPage::new(0), Nanos::ZERO).unwrap();
        assert!(matches!(
            k.promote(VirtPage::new(0), Nanos::ZERO),
            Err(Error::MigrationRejected { .. })
        ));
    }

    #[test]
    fn demote_already_slow_rejected() {
        let mut k = kernel(1, 2);
        k.touch_alloc(VirtPage::new(0), Nanos::ZERO).unwrap();
        k.touch_alloc(VirtPage::new(1), Nanos::ZERO).unwrap(); // slow
        assert!(matches!(
            k.demote(VirtPage::new(1), Nanos::ZERO),
            Err(Error::MigrationRejected { .. })
        ));
    }

    #[test]
    fn migration_charges_time() {
        let mut k = kernel(2, 2);
        k.touch_alloc(VirtPage::new(0), Nanos::ZERO).unwrap();
        let t = k.demote(VirtPage::new(0), Nanos::ZERO).unwrap();
        // The returned charge is the critical-path share of the full
        // migration cost.
        let min_charge = (k.costs().per_page_overhead + k.costs().tlb_shootdown)
            .scale(k.costs().migration_cpu_charge_pct as f64 / 100.0);
        assert!(t >= min_charge, "must include the charged share of fixed overhead");
        assert_eq!(k.stats().migration_time, t);
        assert_eq!(k.stats().demoted_bytes, Bytes::new(PAGE_SIZE));
    }

    #[test]
    fn demote_coldest_respects_lru() {
        let mut k = kernel(3, 6);
        for i in 0..3 {
            k.touch_alloc(VirtPage::new(i), Nanos::ZERO).unwrap();
        }
        k.record_fast_access(VirtPage::new(0));
        let (victims, t) = k.demote_coldest(2, Nanos::ZERO);
        assert_eq!(victims, vec![VirtPage::new(1), VirtPage::new(2)]);
        assert!(t > Nanos::ZERO);
        assert_eq!(k.tier_of(VirtPage::new(0)).unwrap(), Tier::Fast);
    }

    #[test]
    fn hint_fault_unpoisons_and_counts() {
        let mut k = kernel(1, 1);
        k.touch_alloc(VirtPage::new(0), Nanos::ZERO).unwrap();
        k.page_table_mut().update(VirtPage::new(0), |pte| pte.poisoned = true).unwrap();
        let t = k.service_hint_fault(VirtPage::new(0)).unwrap();
        assert_eq!(t, k.costs().hint_fault);
        assert!(!k.page_table().get(VirtPage::new(0)).unwrap().poisoned);
        assert_eq!(k.stats().hint_faults, 1);
    }

    #[test]
    fn translate_unmapped_errors() {
        let k = kernel(1, 1);
        assert!(k.translate(VirtPage::new(0)).is_err());
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;

    #[test]
    fn arbitrary_demotion_ignores_recency() {
        let mut k = Kernel::new(KernelConfig::with_frames(4, 8));
        for p in 0..4 {
            k.touch_alloc(VirtPage::new(p), Nanos::ZERO).unwrap();
        }
        // Heat up page 0 heavily; arbitrary demotion may still pick it.
        for _ in 0..10 {
            k.record_fast_access(VirtPage::new(0));
        }
        let (victims, t) = k.demote_arbitrary(2, Nanos::ZERO);
        assert_eq!(victims.len(), 2);
        assert!(t > Nanos::ZERO);
        assert_eq!(k.stats().demotions, 2);
        for v in victims {
            assert!(k.tier_of(v).unwrap().is_slow());
        }
    }

    #[test]
    fn arbitrary_demotion_stops_when_fast_tier_empty() {
        let mut k = Kernel::new(KernelConfig::with_frames(2, 8));
        k.touch_alloc(VirtPage::new(0), Nanos::ZERO).unwrap();
        let (victims, _) = k.demote_arbitrary(5, Nanos::ZERO);
        assert_eq!(victims.len(), 1, "only one fast page existed");
        let (none, t) = k.demote_arbitrary(5, Nanos::ZERO);
        assert!(none.is_empty());
        assert_eq!(t, Nanos::ZERO);
    }
}

#[cfg(test)]
mod rmap_tests {
    use super::*;

    #[test]
    fn rmap_tracks_alloc_and_migration() {
        let mut k = Kernel::new(KernelConfig::with_frames(2, 4));
        let vp = VirtPage::new(3);
        let f0 = k.touch_alloc(vp, Nanos::ZERO).unwrap();
        assert_eq!(k.vpage_of(f0), Some(vp));
        k.demote(vp, Nanos::ZERO).unwrap();
        let f1 = k.translate(vp).unwrap();
        assert_ne!(f0, f1);
        assert_eq!(k.vpage_of(f0), None, "old frame unmapped");
        assert_eq!(k.vpage_of(f1), Some(vp));
        assert_eq!(k.vpage_of(PageNum::new(5)), None);
    }
}
