//! Snapshot tests for the config layer's diagnostics, plus the corpus
//! gate: every checked-in `scenarios/*.cfg` must parse, validate and
//! resolve by name.
//!
//! The diagnostic pins are deliberately exact-match: the error text is
//! part of the user interface (CI logs quote it verbatim), so a
//! wording change must show up in review as a test diff, not slip by.

use std::path::PathBuf;

use neomem::prelude::*;
use neomem::types::config::ConfigDoc;
use neomem::workloads::ScenarioConfig;
use neomem_runner::Registry;

/// The checked-in corpus directory, independent of the test's cwd.
fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

#[test]
fn corpus_loads_and_is_large_enough() {
    let registry = Registry::load(corpus_dir()).expect("checked-in corpus must validate");
    assert!(registry.len() >= 24, "corpus has {} entries, want >= 24", registry.len());
    assert!(registry.machine_names().count() >= 4, "want a few machines");
    assert!(registry.scenario_names().count() >= 18, "want a broad scenario set");
}

#[test]
fn corpus_names_all_resolve_and_map_to_files() {
    let registry = Registry::load(corpus_dir()).expect("checked-in corpus must validate");
    let names: Vec<String> = registry
        .machine_names()
        .chain(registry.scenario_names())
        .map(str::to_string)
        .collect();
    for name in &names {
        assert!(registry.path_of(name).is_file(), "{name} has no backing file");
    }
    for name in registry.scenario_names().map(str::to_string).collect::<Vec<_>>() {
        let config = registry.scenario(&name).expect("listed scenario resolves");
        assert_eq!(config.name, name, "stem/name invariant");
        // Machine references were validated at load; resolving again
        // must therefore never fail.
        let _ = registry.machine_for(&name).expect("machine ref resolves");
    }
}

/// Exact diagnostic text for invalid scenario files, end to end
/// through [`ScenarioConfig::parse`].
#[test]
fn scenario_diagnostics_are_pinned() {
    let err = |text: &str| ScenarioConfig::parse(text).unwrap_err().to_string();
    let base = "schema = 1\nkind = scenario\nname = x\n";
    let cases = [
        (
            format!("{base}[tenant]\nworkload = redsi\nrss_pages = 64\nseed = 1\n"),
            "line 5: unknown workload \"redsi\"; available: pagerank, xsbench, silo, bwaves, \
             roms, btree, gups, deathstarbench, redis (did you mean \"redis\"?)",
        ),
        (
            format!("{base}[tenant]\nworkload = gups\nrss_pages = 64\nseed = 1\nwieght = 2\n"),
            "line 8: unknown key \"wieght\" in [tenant] (did you mean \"weight\"?)",
        ),
        (
            format!("{base}[tenant]\nworkload = gups\nrss_pages = fast\nseed = 1\n"),
            "line 6: key \"rss_pages\" wants an integer, found string in [tenant]",
        ),
        (
            format!("{base}[tenant]\nrss_pages = 64\nseed = 1\n"),
            "line 4: missing required key \"workload\" in [tenant]",
        ),
        (
            format!(
                "{base}[tenant]\nworkload = gups\nrss_pages = 64\nseed = 1\n\
                 [event]\nat = 1ms\ntenant = 0\naction = depar\n"
            ),
            "line 11: unknown action \"depar\" (want arrive, depart or set-weight) \
             (did you mean \"depart\"?)",
        ),
        (
            "schema = 9\nkind = scenario\nname = x\n".to_string(),
            "line 1: unsupported schema version 9 (this build reads 1)",
        ),
        (
            format!(
                "{base}[tenant]\nworkload = gups\nrss_pages = 64\nseed = 1\n\
                 [fault]\nkind = link-degarded\nat = 1ms\nduration = 1ms\n"
            ),
            "line 9: unknown fault kind \"link-degarded\"; available: neoprof-outage, \
             link-degraded, capacity-loss (did you mean \"link-degraded\"?)",
        ),
        (
            format!(
                "{base}[tenant]\nworkload = gups\nrss_pages = 64\nseed = 1\n\
                 [falut]\nkind = neoprof-outage\nat = 1ms\nduration = 1ms\n"
            ),
            "line 8: unknown section [falut] in a scenario file (did you mean [fault]?)",
        ),
    ];
    for (text, want) in cases {
        assert_eq!(err(&text), want, "input:\n{text}");
    }
}

/// Exact diagnostic text at the JSON layer: duplicate object keys in
/// hand-edited baselines/snapshots are rejected by name, never
/// last-wins merged.
#[test]
fn json_duplicate_keys_are_pinned() {
    use neomem::types::json::Json;
    let err = Json::parse(r#"{"runtime_ns":1,"runtime_ns":2}"#)
        .expect_err("duplicate keys must be rejected");
    assert_eq!(
        err.to_string(),
        "JSON parse error at byte 30: duplicate object key \"runtime_ns\""
    );
}

/// Exact diagnostic text for invalid machine files, end to end through
/// [`MachineDescription::parse`].
#[test]
fn machine_diagnostics_are_pinned() {
    let err = |text: &str| MachineDescription::parse(text).unwrap_err().to_string();
    let base = "schema = 1\nkind = machine\nname = m\n";
    let cases = [
        (
            format!("{base}preset = huge\n"),
            "line 4: unknown preset \"huge\" (want quick or large)",
        ),
        (
            format!("{base}[memory]\nratio = 2000\n"),
            "line 5: key \"ratio\" is 2000, want 1..=1024 in [memory]",
        ),
        (
            format!("{base}[memory]\nfast_bandwidth = 0GiB/s\n"),
            "line 5: key \"fast_bandwidth\" must be a positive bandwidth",
        ),
        (
            format!("{base}[tlb]\nentries = 64\nways = 4\nwalk = 12\n"),
            "line 7: key \"walk\" wants a duration (e.g. 8ms, 118ns), found integer in [tlb]",
        ),
        (
            format!("{base}[memory]\nslow_read_latency = 600\n"),
            "line 5: key \"slow_read_latency\" wants a duration (e.g. 8ms, 118ns), \
             found integer in [memory]",
        ),
    ];
    for (text, want) in cases {
        assert_eq!(err(&text), want, "input:\n{text}");
    }
}

/// Exact diagnostic text at the grammar layer.
#[test]
fn grammar_diagnostics_are_pinned() {
    let err = |text: &str| ConfigDoc::parse(text).unwrap_err().to_string();
    assert_eq!(
        err("a = 1\na = 2\n"),
        "line 2: duplicate key \"a\" in top level (first set on line 1)"
    );
    assert_eq!(
        err("ba$d = 1\n"),
        "line 1: invalid key \"ba$d\" (want letters, digits, '_', '-')"
    );
}

/// A corrupted corpus copy fails with a path-prefixed, line-precise
/// message — what the CI `scenario check` job surfaces on a bad PR.
#[test]
fn corrupted_corpus_copy_fails_with_path_and_line() {
    let dir = std::env::temp_dir()
        .join(format!("neomem-corpus-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for entry in std::fs::read_dir(corpus_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "cfg") {
            std::fs::copy(&path, dir.join(path.file_name().unwrap())).unwrap();
        }
    }
    // Sabotage one file: a typo'd key inside [memory].
    let victim = dir.join("ddr-cxl-base.cfg");
    let text = std::fs::read_to_string(&victim).unwrap().replace("ratio =", "ratoi =");
    std::fs::write(&victim, text).unwrap();
    let err = Registry::load(&dir).unwrap_err().to_string();
    assert!(err.contains("ddr-cxl-base.cfg"), "{err}");
    assert!(err.contains("did you mean \"ratio\"?"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
