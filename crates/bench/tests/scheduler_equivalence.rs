//! Scheduler-equivalence suite: a [`Scenario`] with no arrivals,
//! departures or phase changes must be *bit-identical* to the classic
//! `StaticRoundRobin` co-run — for every tenant mix the corun figure
//! gates, through the grid path at `--threads` 1 vs 4, and through the
//! engine at every batch size. This is the refactor's safety net: the
//! `SliceScheduler` extraction must never move a single simulated
//! counter on the static path.

use neomem::policies::{FirstTouchPolicy, TieringPolicy};
use neomem::prelude::*;
use neomem_bench::figures::corun::mixes;
use neomem_runner::ExperimentGrid;

/// Per-mix access budget: small enough to keep the suite quick, large
/// enough to cross many slice boundaries, ticks and samples.
const BUDGET: u64 = 20_000;

fn first_touch() -> Box<dyn TieringPolicy> {
    Box::new(FirstTouchPolicy::new())
}

/// Asserts two co-run reports agree on every simulated quantity.
fn assert_identical(a: &CoRunReport, b: &CoRunReport, label: &str) {
    assert_eq!(a.combined.runtime, b.combined.runtime, "{label}: runtime");
    assert_eq!(a.combined.accesses, b.combined.accesses, "{label}: accesses");
    assert_eq!(a.combined.scalar_metrics(), b.combined.scalar_metrics(), "{label}: metrics");
    assert_eq!(a.combined.markers, b.combined.markers, "{label}: markers");
    assert_eq!(a.tenants, b.tenants, "{label}: tenant sections");
    assert_eq!(a.contention, b.contention, "{label}: contention");
}

#[test]
fn steady_scenarios_match_static_round_robin_for_every_corun_mix() {
    for (label, mix) in mixes() {
        let config = {
            let mut c = CoRunConfig::quick(&mix, 2);
            c.sim.max_accesses = BUDGET;
            c
        };
        let fixed = CoRunSimulation::new(config.clone(), &mix, first_touch())
            .expect("valid static co-run")
            .run();
        let scenario = Scenario::steady(mix);
        let dynamic = CoRunSimulation::with_scenario(config, &scenario, first_touch())
            .expect("valid steady scenario")
            .run();
        assert_identical(&fixed, &dynamic, label);
    }
}

#[test]
fn steady_scenarios_are_batch_size_invariant_for_every_corun_mix() {
    for (label, mix) in mixes() {
        let run = |batch: usize| {
            let mut config = CoRunConfig::quick(&mix, 2);
            config.sim.max_accesses = BUDGET;
            config.sim.batch_size = batch;
            CoRunSimulation::with_scenario(
                config,
                &Scenario::steady(mix.clone()),
                first_touch(),
            )
            .expect("valid steady scenario")
            .run()
        };
        let reference = run(256);
        for batch in [1usize, 33, 1024] {
            assert_identical(&reference, &run(batch), &format!("{label} batch={batch}"));
        }
    }
}

/// The grid path: the same mixes as corun/scenario axis entries must
/// produce cell metrics that agree, and the scenario grid's JSON must
/// be byte-identical at 1 vs 4 worker threads.
#[test]
fn steady_scenario_grids_match_corun_grids_and_are_thread_invariant() {
    let grid = |threads: usize| {
        let mut g = ExperimentGrid::new("equivalence")
            .workloads([])
            .ratios([2])
            .seeds([2024])
            .budgets([BUDGET])
            .time_scale(1000)
            .policies([PolicyKind::NeoMem, PolicyKind::FirstTouch]);
        for (label, mix) in mixes() {
            g = g
                .corun(format!("static/{label}"), mix.clone())
                .scenario(format!("steady/{label}"), Scenario::steady(mix));
        }
        g.run(threads).expect("valid equivalence grid")
    };
    let one = grid(1);
    let four = grid(4);
    assert_eq!(
        one.to_json().render_pretty(),
        four.to_json().render_pretty(),
        "grid JSON must be byte-identical at 1 vs 4 threads"
    );
    for (label, _) in mixes() {
        for policy in [PolicyKind::NeoMem, PolicyKind::FirstTouch] {
            let fixed = one.corun_for(&format!("static/{label}"), policy, "");
            let steady = one.scenario_for(&format!("steady/{label}"), policy, "");
            assert_eq!(
                fixed.report.scalar_metrics(),
                steady.report.scalar_metrics(),
                "{label}/{policy:?}: combined metrics"
            );
            let fixed_sections = fixed.corun.as_ref().expect("corun sections");
            let steady_sections = steady.corun.as_ref().expect("corun sections");
            assert_eq!(
                fixed_sections.tenants, steady_sections.tenants,
                "{label}/{policy:?}: tenant sections"
            );
            assert_eq!(
                fixed_sections.contention, steady_sections.contention,
                "{label}/{policy:?}: contention"
            );
        }
    }
}
