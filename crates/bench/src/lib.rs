//! Shared plumbing for the figure/table regeneration harness.
//!
//! Every table and figure in the paper's evaluation has a `harness =
//! false` bench target that prints the corresponding rows/series; run
//! them all with `cargo bench`, or one with e.g.
//! `cargo bench --bench fig11_end_to_end`.
//!
//! The same figures are also exposed through the `neomem-bench` CLI
//! binary, which additionally writes machine-readable JSON results to
//! `target/bench-results/<name>.json` and runs experiment grids in
//! parallel through [`neomem_runner`]:
//!
//! ```sh
//! cargo run --release -p neomem_bench --bin neomem-bench -- fig11 --threads 4
//! ```
//!
//! Set `NEOMEM_SCALE=full` for ~10× longer, higher-fidelity runs
//! (default: `quick`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use neomem::prelude::*;
use neomem_runner::ExperimentGrid;

pub mod alloc_probe;
pub mod diffcheck;
pub mod figures;
pub mod wallcmp;

/// Scale knob read from `NEOMEM_SCALE` (`quick` default, `full` = 10×).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Minutes-for-everything default.
    #[default]
    Quick,
    /// ~10× more simulated accesses.
    Full,
}

impl Scale {
    /// Parses a scale name, case-insensitively. Empty input counts as
    /// unset and maps to quick.
    pub fn parse(value: &str) -> Option<Self> {
        match value.trim().to_ascii_lowercase().as_str() {
            "" | "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Reads the scale from the environment.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognised `NEOMEM_SCALE` value — a misspelling
    /// like `Fulll` must not silently fall back to a quick run.
    pub fn from_env() -> Self {
        match std::env::var("NEOMEM_SCALE") {
            Err(_) => Scale::Quick,
            Ok(value) => Scale::parse(&value).unwrap_or_else(|| {
                panic!(
                    "unrecognised NEOMEM_SCALE value {value:?}: expected \"quick\" or \"full\" \
                     (case-insensitive)"
                )
            }),
        }
    }

    /// The canonical lowercase name (`quick` / `full`).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }

    /// Multiplies a quick-mode access budget.
    pub fn accesses(self, quick: u64) -> u64 {
        match self {
            Scale::Quick => quick,
            Scale::Full => quick * 10,
        }
    }
}

/// Standard experiment shell used by most figures: paper defaults,
/// 1:2 ratio, scaled cadences.
pub fn experiment(workload: WorkloadKind, policy: PolicyKind, scale: Scale) -> ExperimentBuilder {
    Experiment::builder()
        .workload(workload)
        .policy(policy)
        .rss_pages(6144)
        .ratio(2)
        .accesses(scale.accesses(1_200_000))
        .time_scale(1000)
        .seed(2024)
}

/// The grid-level counterpart of [`experiment`]: a campaign shell with
/// the paper defaults (6144 pages, 1:2 ratio, seed 2024, scaled 1.2 M
/// access budget) ready for axis overrides.
pub fn paper_grid(name: &str, scale: Scale) -> ExperimentGrid {
    ExperimentGrid::new(name)
        .rss_pages(6144)
        .ratios([2])
        .seeds([2024])
        .budgets([scale.accesses(1_200_000)])
        .time_scale(1000)
}

/// Geometric mean of a slice of positive numbers.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Formats a table row of fixed-width cells.
pub fn row(cells: &[String]) -> String {
    cells.iter().map(|c| format!("{c:>14}")).collect::<Vec<_>>().join(" | ")
}

/// Prints the standard harness header.
pub fn header(title: &str, source: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("(regenerates {source}; shapes should match, absolutes will not)");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn scale_env_accessor() {
        assert_eq!(Scale::Quick.accesses(100), 100);
        assert_eq!(Scale::Full.accesses(100), 1000);
    }

    #[test]
    fn scale_parsing_is_case_insensitive() {
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("FULL"), Some(Scale::Full));
        assert_eq!(Scale::parse("Full"), Some(Scale::Full));
        assert_eq!(Scale::parse(" quick "), Some(Scale::Quick));
        assert_eq!(Scale::parse("QUICK"), Some(Scale::Quick));
        assert_eq!(Scale::parse(""), Some(Scale::Quick));
    }

    #[test]
    fn scale_parsing_rejects_unknown_values() {
        for bad in ["Fulll", "ful", "10x", "fast", "quick full"] {
            assert_eq!(Scale::parse(bad), None, "accepted {bad:?}");
        }
    }

    #[test]
    fn scale_names_round_trip() {
        for scale in [Scale::Quick, Scale::Full] {
            assert_eq!(Scale::parse(scale.name()), Some(scale));
        }
    }

    #[test]
    fn experiment_shell_builds() {
        let e = experiment(WorkloadKind::Gups, PolicyKind::FirstTouch, Scale::Quick);
        assert!(e.accesses(10_000).rss_pages(1024).build().is_ok());
    }

    #[test]
    fn paper_grid_matches_experiment_shell() {
        let cells = paper_grid("shell", Scale::Quick)
            .workloads([WorkloadKind::Gups])
            .policies([PolicyKind::FirstTouch])
            .cells();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].seed, 2024);
        assert_eq!(cells[0].ratio, 2);
        assert_eq!(cells[0].accesses, 1_200_000);
    }

    #[test]
    #[should_panic(expected = "geomean of empty")]
    fn geomean_rejects_empty() {
        let _ = geomean(&[]);
    }
}
