//! Shared plumbing for the figure/table regeneration harness.
//!
//! Every table and figure in the paper's evaluation has a `harness =
//! false` bench target that prints the corresponding rows/series; run
//! them all with `cargo bench`, or one with e.g.
//! `cargo bench --bench fig11_end_to_end`.
//!
//! Set `NEOMEM_SCALE=full` for ~10× longer, higher-fidelity runs
//! (default: `quick`).

use neomem::prelude::*;

/// Scale knob read from `NEOMEM_SCALE` (`quick` default, `full` = 10×).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-for-everything default.
    Quick,
    /// ~10× more simulated accesses.
    Full,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Self {
        match std::env::var("NEOMEM_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Multiplies a quick-mode access budget.
    pub fn accesses(self, quick: u64) -> u64 {
        match self {
            Scale::Quick => quick,
            Scale::Full => quick * 10,
        }
    }
}

/// Standard experiment shell used by most figures: paper defaults,
/// 1:2 ratio, scaled cadences.
pub fn experiment(workload: WorkloadKind, policy: PolicyKind, scale: Scale) -> ExperimentBuilder {
    Experiment::builder()
        .workload(workload)
        .policy(policy)
        .rss_pages(6144)
        .ratio(2)
        .accesses(scale.accesses(1_200_000))
        .time_scale(1000)
        .seed(2024)
}

/// Geometric mean of a slice of positive numbers.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Formats a table row of fixed-width cells.
pub fn row(cells: &[String]) -> String {
    cells.iter().map(|c| format!("{c:>14}")).collect::<Vec<_>>().join(" | ")
}

/// Prints the standard harness header.
pub fn header(title: &str, source: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("(regenerates {source}; shapes should match, absolutes will not)");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn scale_env_accessor() {
        assert_eq!(Scale::Quick.accesses(100), 100);
        assert_eq!(Scale::Full.accesses(100), 1000);
    }

    #[test]
    fn experiment_shell_builds() {
        let e = experiment(WorkloadKind::Gups, PolicyKind::FirstTouch, Scale::Quick);
        assert!(e.accesses(10_000).rss_pages(1024).build().is_ok());
    }

    #[test]
    #[should_panic(expected = "geomean of empty")]
    fn geomean_rejects_empty() {
        let _ = geomean(&[]);
    }
}
