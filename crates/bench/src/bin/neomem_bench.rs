//! `neomem-bench` — the experiment-campaign CLI.
//!
//! Regenerates any paper figure/table by name, runs its experiment grid
//! on a worker pool, and writes machine-readable JSON results:
//!
//! ```sh
//! neomem-bench fig11 --threads 4            # table to stdout + JSON file
//! neomem-bench all                          # every figure
//! neomem-bench list                         # available names
//! neomem-bench compare BENCH_fig11.json target/bench-results/fig11.json
//! neomem-bench gate fig11 --baseline BENCH_fig11.json --tolerance 0.1
//! ```
//!
//! JSON lands in `--out` (default `target/bench-results/<name>.json`)
//! and contains only simulated quantities, so it is byte-identical at
//! any `--threads` value. `NEOMEM_SCALE=quick|full` selects the access
//! budget.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use neomem_bench::figures::{self, Figure, RunContext};
use neomem_bench::Scale;
use neomem_runner::{compare, GateConfig, Json};

struct Options {
    threads: usize,
    out_dir: PathBuf,
    tolerance: f64,
    baseline: Option<PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            threads: 0,
            out_dir: PathBuf::from("target/bench-results"),
            tolerance: 0.10,
            baseline: None,
        }
    }
}

enum Command {
    Run(Vec<&'static Figure>),
    Help,
    List,
    Compare(PathBuf, PathBuf),
    Gate(&'static Figure),
}

const USAGE: &str = "\
neomem-bench — regenerate paper figures/tables with machine-readable results

USAGE:
    neomem-bench <figure>... [--threads N] [--out DIR]
    neomem-bench all [--threads N] [--out DIR]
    neomem-bench list
    neomem-bench compare <baseline.json> <current.json> [--tolerance F]
    neomem-bench gate <figure> --baseline <file> [--tolerance F] [--threads N] [--out DIR]

OPTIONS:
    --threads N      worker threads for experiment grids (default: all cores)
    --out DIR        JSON output directory (default: target/bench-results)
    --tolerance F    allowed relative runtime drift for compare/gate (default: 0.10)
    --baseline FILE  checked-in baseline for gate (e.g. BENCH_fig11.json)

ENVIRONMENT:
    NEOMEM_SCALE     quick (default) | full — ~10x longer runs
";

fn parse_args() -> Result<(Command, Options), String> {
    let mut options = Options::default();
    let mut names: Vec<String> = Vec::new();
    let mut positional: Vec<String> = Vec::new();
    let mut list = false;
    let mut args = std::env::args().skip(1);
    let mut keyword: Option<String> = None;
    while let Some(arg) = args.next() {
        let mut value_for = |flag: &str| {
            args.next().ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--threads" => {
                let v = value_for("--threads")?;
                options.threads =
                    v.parse().map_err(|_| format!("invalid --threads value {v:?}"))?;
            }
            "--out" => options.out_dir = PathBuf::from(value_for("--out")?),
            "--tolerance" => {
                let v = value_for("--tolerance")?;
                options.tolerance =
                    v.parse().map_err(|_| format!("invalid --tolerance value {v:?}"))?;
            }
            "--baseline" => options.baseline = Some(PathBuf::from(value_for("--baseline")?)),
            "-h" | "--help" => return Ok((Command::Help, options)),
            // `list` is a command only in first position; anywhere else
            // it stays a positional (e.g. a results file named `list`).
            "list" | "--list" if keyword.is_none() && names.is_empty() => list = true,
            "compare" | "gate" if keyword.is_none() => {
                if list || !names.is_empty() {
                    return Err(format!("{arg} cannot be combined with other commands\n\n{USAGE}"));
                }
                keyword = Some(arg);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n\n{USAGE}"))
            }
            _ => {
                if keyword.is_some() {
                    positional.push(arg);
                } else {
                    names.push(arg);
                }
            }
        }
    }
    if list {
        if !names.is_empty() || !positional.is_empty() {
            return Err(format!("list takes no further arguments\n\n{USAGE}"));
        }
        return Ok((Command::List, options));
    }
    match keyword.as_deref() {
        Some("compare") => {
            if positional.len() != 2 {
                return Err(format!(
                    "compare takes exactly two files, got {}\n\n{USAGE}",
                    positional.len()
                ));
            }
            Ok((
                Command::Compare(PathBuf::from(&positional[0]), PathBuf::from(&positional[1])),
                options,
            ))
        }
        Some("gate") => {
            if positional.len() != 1 {
                return Err(format!("gate takes exactly one figure name\n\n{USAGE}"));
            }
            if options.baseline.is_none() {
                return Err("gate requires --baseline <file>".to_string());
            }
            let figure = resolve(&positional[0])?;
            Ok((Command::Gate(figure), options))
        }
        _ => {
            if names.is_empty() {
                return Err(USAGE.to_string());
            }
            let figures = if names.iter().any(|n| n == "all") {
                figures::ALL.iter().collect()
            } else {
                names.iter().map(|n| resolve(n)).collect::<Result<Vec<_>, _>>()?
            };
            Ok((Command::Run(figures), options))
        }
    }
}

fn resolve(name: &str) -> Result<&'static Figure, String> {
    figures::find(name).ok_or_else(|| {
        let known: Vec<&str> = figures::ALL.iter().map(|f| f.name).collect();
        format!("unknown figure {name:?}; known figures: {}", known.join(", "))
    })
}

fn load_json(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

/// Runs one figure and writes its JSON result; returns the document.
fn run_and_write(figure: &Figure, ctx: &RunContext, out_dir: &Path) -> Result<Json, String> {
    let started = Instant::now();
    let doc = figures::run_figure(figure, ctx);
    std::fs::create_dir_all(out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
    let path = out_dir.join(format!("{}.json", figure.name));
    std::fs::write(&path, doc.render_pretty())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    println!(
        "\n[neomem-bench] {} done in {:.1}s -> {}",
        figure.name,
        started.elapsed().as_secs_f64(),
        path.display()
    );
    Ok(doc)
}

fn main() -> ExitCode {
    let (command, options) = match parse_args() {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let ctx = RunContext { scale: Scale::from_env(), threads: options.threads };
    let gate_config = GateConfig { tolerance: options.tolerance, ..Default::default() };
    let outcome: Result<bool, String> = match command {
        Command::Help => {
            println!("{USAGE}");
            Ok(true)
        }
        Command::List => {
            for figure in figures::ALL {
                println!("{:<14} {}", figure.name, figure.title);
            }
            Ok(true)
        }
        Command::Run(figures) => figures
            .iter()
            .try_for_each(|figure| run_and_write(figure, &ctx, &options.out_dir).map(|_| ()))
            .map(|()| true),
        Command::Compare(baseline_path, current_path) => {
            load_json(&baseline_path).and_then(|baseline| {
                load_json(&current_path).map(|current| {
                    let report = compare(&baseline, &current, &gate_config);
                    print!("{}", report.summary());
                    report.passed()
                })
            })
        }
        Command::Gate(figure) => {
            let baseline_path = options.baseline.as_deref().expect("validated in parse_args");
            load_json(baseline_path).and_then(|baseline| {
                run_and_write(figure, &ctx, &options.out_dir).map(|current| {
                    let report = compare(&baseline, &current, &gate_config);
                    print!("{}", report.summary());
                    report.passed()
                })
            })
        }
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("neomem-bench: {message}");
            ExitCode::FAILURE
        }
    }
}
