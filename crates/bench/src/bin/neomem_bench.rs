//! `neomem-bench` — the experiment-campaign CLI.
//!
//! Regenerates any paper figure/table by name, runs its experiment grid
//! on a worker pool, and writes machine-readable JSON results:
//!
//! ```sh
//! neomem-bench fig11 --threads 4            # table to stdout + JSON file
//! neomem-bench all                          # every figure
//! neomem-bench list                         # available names
//! neomem-bench compare BENCH_fig11.json target/bench-results/fig11.json
//! neomem-bench gate fig11 --baseline BENCH_fig11.json --tolerance 0.1
//! neomem-bench perf fig11                   # + wall-clock throughput report
//! ```
//!
//! JSON lands in `--out` (default `target/bench-results/<name>.json`)
//! and contains only simulated quantities, so it is byte-identical at
//! any `--threads` value. `NEOMEM_SCALE=quick|full` selects the access
//! budget.
//!
//! Host-side measurement is strictly separated from the results: `perf`
//! (and `--wall-report` on plain runs) reports wall-clock simulated
//! accesses per second per figure on stderr and into its own JSON file
//! — never into the result documents, whose bytes and metric names are
//! a baseline contract.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use neomem::types::suggest;
use neomem_bench::figures::{self, Figure, RunContext};
use neomem_bench::Scale;
use neomem_runner::{compare, effective_threads, GateConfig, Json, Registry};

// Counting global allocator, so `neomem-bench perf micro_engine` can
// report steady-state allocation counts of the engine loop (see
// `neomem_bench::alloc_probe`).
neomem_bench::counting_allocator!();

struct Options {
    threads: usize,
    out_dir: PathBuf,
    tolerance: f64,
    baseline: Option<PathBuf>,
    wall_report: Option<PathBuf>,
    warm_start: Option<PathBuf>,
    machine: Option<String>,
    compare_wall: Option<PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            threads: 0,
            out_dir: PathBuf::from("target/bench-results"),
            tolerance: 0.10,
            baseline: None,
            wall_report: None,
            warm_start: None,
            machine: None,
            compare_wall: None,
        }
    }
}

enum Command {
    /// Figures plus `scenario:<name>` corpus targets, run in order.
    Run(Vec<&'static Figure>, Vec<String>),
    Perf(Vec<&'static Figure>),
    Snapshot(Vec<&'static Figure>),
    Help,
    List,
    Compare(PathBuf, PathBuf),
    Gate(&'static Figure),
    ScenarioList,
    ScenarioCheck,
    ScenarioRun(Vec<String>),
}

const USAGE: &str = "\
neomem-bench — regenerate paper figures/tables with machine-readable results

USAGE:
    neomem-bench <figure|scenario:NAME>... [--threads N] [--out DIR] [--machine NAME]
                 [--wall-report FILE] [--warm-start DIR]
    neomem-bench all [--threads N] [--out DIR] [--wall-report FILE] [--warm-start DIR]
    neomem-bench perf <figure>...|all [--threads N] [--out DIR] [--wall-report FILE]
                      [--compare OLD_WALL_REPORT.json]
    neomem-bench snapshot <figure>...|all --warm-start DIR [--threads N] [--out DIR]
    neomem-bench list
    neomem-bench scenario list
    neomem-bench scenario check [--all]
    neomem-bench scenario run <name>... [--machine NAME] [--threads N] [--out DIR]
    neomem-bench compare <baseline.json> <current.json> [--tolerance F]
    neomem-bench gate <figure> --baseline <file> [--tolerance F] [--threads N] [--out DIR]
                      [--warm-start DIR]

OPTIONS:
    --threads N         worker threads for experiment grids (default: all cores)
    --out DIR           JSON output directory (default: target/bench-results)
    --tolerance F       allowed relative runtime drift for compare/gate (default: 0.10)
    --baseline FILE     checked-in baseline for gate (e.g. BENCH_fig11.json)
    --machine NAME      registry machine for scenario runs, overriding the
                        scenario file's own machine reference
    --wall-report FILE  write host wall-clock throughput JSON here
                        (perf default: target/wall-reports/perf.wall.json)
    --compare FILE      after a perf run, print per-figure accesses/s
                        ratios against this older wall-report (trend
                        signal only — never affects the exit code)
    --warm-start DIR    per-cell snapshot directory: `snapshot` populates it,
                        runs/gates restore unchanged cells from it instead of
                        replaying them (results stay byte-identical)

The scenario commands read the checked-in corpus: `list` prints every named
machine and scenario, `check` validates all of it (the CI gate), and `run`
executes named scenarios (also reachable as `scenario:<name>` run targets,
optionally pinned to a machine with --machine or a `machine:<name>` target).

Result JSON carries simulated (virtual-clock) quantities only; wall-clock
throughput goes to stderr and the wall-report file, never into results.

ENVIRONMENT:
    NEOMEM_SCALE         quick (default) | full — ~10x longer runs
    NEOMEM_SCENARIO_DIR  corpus directory (default: nearest scenarios/ upward)
";

fn parse_args() -> Result<(Command, Options), String> {
    let mut options = Options::default();
    let mut names: Vec<String> = Vec::new();
    let mut positional: Vec<String> = Vec::new();
    let mut list = false;
    let mut all_flag = false;
    let mut args = std::env::args().skip(1);
    let mut keyword: Option<String> = None;
    while let Some(arg) = args.next() {
        let mut value_for = |flag: &str| {
            args.next().ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--threads" => {
                let v = value_for("--threads")?;
                options.threads =
                    v.parse().map_err(|_| format!("invalid --threads value {v:?}"))?;
            }
            "--out" => options.out_dir = PathBuf::from(value_for("--out")?),
            "--tolerance" => {
                let v = value_for("--tolerance")?;
                options.tolerance =
                    v.parse().map_err(|_| format!("invalid --tolerance value {v:?}"))?;
            }
            "--baseline" => options.baseline = Some(PathBuf::from(value_for("--baseline")?)),
            "--machine" => options.machine = Some(value_for("--machine")?),
            "--all" => all_flag = true,
            "--wall-report" => {
                options.wall_report = Some(PathBuf::from(value_for("--wall-report")?))
            }
            "--compare" => {
                options.compare_wall = Some(PathBuf::from(value_for("--compare")?))
            }
            "--warm-start" => {
                options.warm_start = Some(PathBuf::from(value_for("--warm-start")?))
            }
            "-h" | "--help" => return Ok((Command::Help, options)),
            // `list` is a command only in first position; anywhere else
            // it stays a positional (e.g. a results file named `list`).
            "list" | "--list" if keyword.is_none() && names.is_empty() => list = true,
            "compare" | "gate" | "perf" | "snapshot" | "scenario" if keyword.is_none() => {
                if list || !names.is_empty() {
                    return Err(format!("{arg} cannot be combined with other commands\n\n{USAGE}"));
                }
                keyword = Some(arg);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n\n{USAGE}"))
            }
            _ => {
                if keyword.is_some() {
                    positional.push(arg);
                } else {
                    names.push(arg);
                }
            }
        }
    }
    if list {
        if !names.is_empty() || !positional.is_empty() {
            return Err(format!("list takes no further arguments\n\n{USAGE}"));
        }
        return Ok((Command::List, options));
    }
    if all_flag && keyword.as_deref() != Some("scenario") {
        return Err(format!("--all only applies to `scenario check`\n\n{USAGE}"));
    }
    if options.compare_wall.is_some() && keyword.as_deref() != Some("perf") {
        return Err(format!("--compare only applies to `perf`\n\n{USAGE}"));
    }
    match keyword.as_deref() {
        Some("scenario") => {
            let Some((sub, rest)) = positional.split_first() else {
                return Err(format!("scenario takes a subcommand: list, check or run\n\n{USAGE}"));
            };
            match sub.as_str() {
                "list" | "check" if !rest.is_empty() => {
                    Err(format!("scenario {sub} takes no further arguments\n\n{USAGE}"))
                }
                "list" => Ok((Command::ScenarioList, options)),
                // `check` always validates the whole corpus; --all is
                // accepted so the CI invocation reads explicitly.
                "check" => Ok((Command::ScenarioCheck, options)),
                "run" if rest.is_empty() => {
                    Err(format!("scenario run takes at least one scenario name\n\n{USAGE}"))
                }
                "run" => Ok((Command::ScenarioRun(rest.to_vec()), options)),
                other => {
                    let hint = suggest::closest(other, ["list", "check", "run"])
                        .map(|s| format!(" (did you mean {s:?}?)"))
                        .unwrap_or_default();
                    Err(format!("unknown scenario subcommand {other:?}{hint}\n\n{USAGE}"))
                }
            }
        }
        Some("compare") => {
            if positional.len() != 2 {
                return Err(format!(
                    "compare takes exactly two files, got {}\n\n{USAGE}",
                    positional.len()
                ));
            }
            Ok((
                Command::Compare(PathBuf::from(&positional[0]), PathBuf::from(&positional[1])),
                options,
            ))
        }
        Some("gate") => {
            if positional.len() != 1 {
                return Err(format!("gate takes exactly one figure name\n\n{USAGE}"));
            }
            if options.baseline.is_none() {
                return Err("gate requires --baseline <file>".to_string());
            }
            let figure = resolve(&positional[0])?;
            Ok((Command::Gate(figure), options))
        }
        Some("perf") => {
            if positional.is_empty() {
                return Err(format!("perf takes at least one figure name (or all)\n\n{USAGE}"));
            }
            let figures = resolve_many(&positional)?;
            Ok((Command::Perf(figures), options))
        }
        Some("snapshot") => {
            if positional.is_empty() {
                return Err(format!(
                    "snapshot takes at least one figure name (or all)\n\n{USAGE}"
                ));
            }
            if options.warm_start.is_none() {
                return Err("snapshot requires --warm-start <dir>".to_string());
            }
            let figures = resolve_many(&positional)?;
            Ok((Command::Snapshot(figures), options))
        }
        _ => {
            if names.is_empty() {
                return Err(USAGE.to_string());
            }
            // Plain run targets mix figures with corpus entries:
            // `scenario:<name>` runs a scenario, `machine:<name>` pins
            // the machine (same as --machine).
            let mut figure_names: Vec<String> = Vec::new();
            let mut scenario_names: Vec<String> = Vec::new();
            for name in names {
                if let Some(scenario) = name.strip_prefix("scenario:") {
                    scenario_names.push(scenario.to_string());
                } else if let Some(machine) = name.strip_prefix("machine:") {
                    options.machine = Some(machine.to_string());
                } else {
                    figure_names.push(name);
                }
            }
            if figure_names.is_empty() && scenario_names.is_empty() {
                return Err(format!("machine:<name> needs a scenario to run\n\n{USAGE}"));
            }
            let figures =
                if figure_names.is_empty() { Vec::new() } else { resolve_many(&figure_names)? };
            Ok((Command::Run(figures, scenario_names), options))
        }
    }
}

fn resolve(name: &str) -> Result<&'static Figure, String> {
    figures::find(name).ok_or_else(|| {
        let known: Vec<&str> = figures::ALL.iter().map(|f| f.name).collect();
        let hint = suggest::closest(name, known.iter().copied())
            .map(|s| format!(" (did you mean {s:?}?)"))
            .unwrap_or_default();
        format!(
            "unknown figure {name:?}; known figures: {}{hint}\n\
             (corpus scenarios run as scenario:<name> — see `neomem-bench scenario list`)",
            known.join(", ")
        )
    })
}

fn resolve_many(names: &[String]) -> Result<Vec<&'static Figure>, String> {
    if names.iter().any(|n| n == "all") {
        Ok(figures::ALL.iter().collect())
    } else {
        names.iter().map(|n| resolve(n)).collect()
    }
}

fn load_json(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

/// One figure's host-side timing: everything needed for the wall
/// report, none of it allowed anywhere near the result JSON.
struct WallEntry {
    figure: &'static str,
    wall_seconds: f64,
    simulated_accesses: u64,
}

impl WallEntry {
    fn accesses_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.simulated_accesses as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// Sums every `metrics.accesses` in a result document — the simulated
/// accesses the figure executed, whatever its grid/cell layout.
fn simulated_accesses(doc: &Json) -> u64 {
    match doc {
        Json::Obj(fields) => fields
            .iter()
            .map(|(key, value)| {
                if key == "metrics" {
                    value.get("accesses").and_then(Json::as_u64).unwrap_or(0)
                } else {
                    simulated_accesses(value)
                }
            })
            .sum(),
        Json::Arr(items) => items.iter().map(simulated_accesses).sum(),
        _ => 0,
    }
}

/// Renders and writes the wall report: a separate artifact so the
/// nondeterministic host numbers can accumulate across PRs without
/// ever touching the byte-stable result files.
fn write_wall_report(
    path: &Path,
    entries: &[WallEntry],
    ctx: &RunContext,
    threads: usize,
) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
    }
    let total_wall: f64 = entries.iter().map(|e| e.wall_seconds).sum();
    let total_accesses: u64 = entries.iter().map(|e| e.simulated_accesses).sum();
    let doc = Json::obj([
        ("schema_version", Json::U64(1)),
        ("kind", Json::from("wall_report")),
        ("scale", Json::from(ctx.scale.name())),
        ("threads", Json::U64(effective_threads(threads) as u64)),
        (
            "entries",
            Json::Arr(
                entries
                    .iter()
                    .map(|e| {
                        Json::obj([
                            ("figure", Json::from(e.figure)),
                            ("wall_seconds", Json::F64(e.wall_seconds)),
                            ("simulated_accesses", Json::U64(e.simulated_accesses)),
                            ("accesses_per_wall_second", Json::F64(e.accesses_per_second())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "total",
            Json::obj([
                ("wall_seconds", Json::F64(total_wall)),
                ("simulated_accesses", Json::U64(total_accesses)),
                (
                    "accesses_per_wall_second",
                    Json::F64(if total_wall > 0.0 {
                        total_accesses as f64 / total_wall
                    } else {
                        0.0
                    }),
                ),
            ]),
        ),
    ]);
    std::fs::write(path, doc.render_pretty())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    eprintln!("[neomem-bench] wall report -> {}", path.display());
    Ok(())
}

/// Runs one figure and writes its JSON result; returns the document
/// and the host-side timing entry.
fn run_and_write(
    figure: &Figure,
    ctx: &RunContext,
    out_dir: &Path,
) -> Result<(Json, WallEntry), String> {
    let started = Instant::now();
    let doc = figures::run_figure(figure, ctx);
    let wall_seconds = started.elapsed().as_secs_f64();
    // A NaN/∞ would render as `null` and silently vanish from the
    // result schema (the gate would then misreport it as a missing
    // metric) — refuse to serialise it, naming the offending path.
    if let Some(path) = doc.find_non_finite() {
        return Err(format!(
            "figure {} produced a non-finite metric at {path}; refusing to write \
             {}.json (it would serialise as null and break the baseline contract)",
            figure.name, figure.name
        ));
    }
    std::fs::create_dir_all(out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
    let path = out_dir.join(format!("{}.json", figure.name));
    std::fs::write(&path, doc.render_pretty())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    println!(
        "\n[neomem-bench] {} done in {:.1}s -> {}",
        figure.name,
        wall_seconds,
        path.display()
    );
    let entry =
        WallEntry { figure: figure.name, wall_seconds, simulated_accesses: simulated_accesses(&doc) };
    Ok((doc, entry))
}

/// Runs a figure set, reporting wall-clock throughput per figure on
/// stderr and (optionally) into `wall_report`.
fn run_figures(
    figures: &[&'static Figure],
    ctx: &RunContext,
    options: &Options,
    wall_report: Option<&Path>,
) -> Result<(), String> {
    let mut entries = Vec::new();
    for figure in figures {
        let (_, entry) = run_and_write(figure, ctx, &options.out_dir)?;
        eprintln!(
            "[perf] {}: {} simulated accesses in {:.2}s wall = {:.2} M accesses/s",
            entry.figure,
            entry.simulated_accesses,
            entry.wall_seconds,
            entry.accesses_per_second() / 1e6,
        );
        entries.push(entry);
    }
    if let Some(path) = wall_report {
        write_wall_report(path, &entries, ctx, options.threads)?;
    }
    Ok(())
}

/// Loads the corpus registry, mapping the error for CLI display.
fn load_registry() -> Result<Registry, String> {
    Registry::discover().map_err(|e| e.to_string())
}

/// `scenario list`: every named machine and scenario in the corpus.
fn scenario_list() -> Result<(), String> {
    let registry = load_registry()?;
    println!("corpus: {} ({} entries)", registry.dir().display(), registry.len());
    for name in registry.machine_names() {
        let machine = registry.machine(name).expect("listed name resolves");
        let title =
            machine.title.as_deref().map(|t| format!(" — {t}")).unwrap_or_default();
        println!("machine   {name:<28}{title}");
    }
    for name in registry.scenario_names() {
        let scenario = registry.scenario(name).expect("listed name resolves");
        let on = scenario.machine.as_deref().map(|m| format!(" on {m}")).unwrap_or_default();
        let title =
            scenario.title.as_deref().map(|t| format!(" — {t}")).unwrap_or_default();
        println!(
            "scenario  {name:<28} {} tenant(s){on}{title}",
            scenario.scenario.mix().len()
        );
    }
    Ok(())
}

/// `scenario check`: validates the whole corpus — parse errors, schema
/// violations, stem/name mismatches, duplicate names and dangling
/// machine references all fail the load with a path-prefixed message.
fn scenario_check() -> Result<(), String> {
    let registry = load_registry()?;
    for name in registry.machine_names() {
        println!("ok  machine   {name}");
    }
    for name in registry.scenario_names() {
        println!("ok  scenario  {name}");
    }
    println!(
        "[neomem-bench] {} corpus entries validated in {}",
        registry.len(),
        registry.dir().display()
    );
    Ok(())
}

/// `scenario run` (and `scenario:<name>` run targets): executes named
/// corpus scenarios, each on its declared machine unless `--machine`
/// pins one, and writes `scenario_<name>.json` results.
fn run_scenarios(names: &[String], ctx: &RunContext, options: &Options) -> Result<(), String> {
    if names.is_empty() {
        return Ok(());
    }
    let registry = load_registry()?;
    let pinned = match &options.machine {
        Some(name) => Some(registry.machine(name).map_err(|e| e.to_string())?),
        None => None,
    };
    for name in names {
        let config = registry.scenario(name).map_err(|e| e.to_string())?;
        let machine = match pinned {
            Some(machine) => Some(machine),
            None => registry.machine_for(name).map_err(|e| e.to_string())?,
        };
        let started = Instant::now();
        let (metrics, run) = figures::registry::run_scenario(config, machine, ctx)
            .map_err(|e| format!("scenario {name:?}: {e}"))?;
        let mut doc = vec![
            ("schema_version".to_string(), Json::U64(1)),
            ("kind".to_string(), Json::from("scenario_run")),
            ("name".to_string(), Json::from(name.as_str())),
            ("scale".to_string(), Json::from(ctx.scale.name())),
        ];
        let Json::Obj(body) = metrics else {
            unreachable!("run_scenario returns an object payload")
        };
        doc.extend(body);
        doc.push(("grid".to_string(), run.to_json()));
        let doc = Json::Obj(doc);
        if let Some(path) = doc.find_non_finite() {
            return Err(format!(
                "scenario {name:?} produced a non-finite metric at {path}; refusing to \
                 write scenario_{name}.json"
            ));
        }
        std::fs::create_dir_all(&options.out_dir)
            .map_err(|e| format!("cannot create {}: {e}", options.out_dir.display()))?;
        let path = options.out_dir.join(format!("scenario_{name}.json"));
        std::fs::write(&path, doc.render_pretty())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!(
            "\n[neomem-bench] scenario {name} done in {:.1}s -> {}",
            started.elapsed().as_secs_f64(),
            path.display()
        );
    }
    Ok(())
}

/// Reads `NEOMEM_SCALE` without panicking: unlike the bench-wrapper
/// path ([`Scale::from_env`]), a CLI rejects bad user input with an
/// actionable message and a failure exit code.
fn scale_from_env() -> Result<Scale, String> {
    match std::env::var("NEOMEM_SCALE") {
        Err(_) => Ok(Scale::Quick),
        Ok(value) => Scale::parse(&value).ok_or_else(|| {
            format!(
                "unrecognised NEOMEM_SCALE value {value:?}: expected \"quick\" or \"full\" \
                 (case-insensitive)"
            )
        }),
    }
}

fn main() -> ExitCode {
    install_probe();
    let (command, options) = match parse_args() {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let scale = match scale_from_env() {
        Ok(scale) => scale,
        Err(message) => {
            eprintln!("neomem-bench: {message}");
            return ExitCode::FAILURE;
        }
    };
    let ctx = RunContext {
        scale,
        threads: options.threads,
        warm_dir: options.warm_start.clone(),
        write_snapshots: matches!(command, Command::Snapshot(_)),
    };
    let gate_config = GateConfig { tolerance: options.tolerance, ..Default::default() };
    let outcome: Result<bool, String> = match command {
        Command::Help => {
            println!("{USAGE}");
            Ok(true)
        }
        Command::List => {
            for figure in figures::ALL {
                println!("{:<14} {}", figure.name, figure.title);
            }
            Ok(true)
        }
        Command::Run(figures, scenarios) => {
            run_figures(&figures, &ctx, &options, options.wall_report.as_deref())
                .and_then(|()| run_scenarios(&scenarios, &ctx, &options))
                .map(|()| true)
        }
        Command::Snapshot(figures) => {
            run_figures(&figures, &ctx, &options, options.wall_report.as_deref()).map(|()| true)
        }
        Command::ScenarioList => scenario_list().map(|()| true),
        Command::ScenarioCheck => scenario_check().map(|()| true),
        Command::ScenarioRun(names) => run_scenarios(&names, &ctx, &options).map(|()| true),
        Command::Perf(figures) => {
            let default_path = PathBuf::from("target/wall-reports/perf.wall.json");
            let path = options.wall_report.clone().unwrap_or(default_path);
            run_figures(&figures, &ctx, &options, Some(&path)).and_then(|()| {
                let Some(old_path) = &options.compare_wall else { return Ok(true) };
                let old = load_json(old_path)?;
                let new = load_json(&path)?;
                let rows = neomem_bench::wallcmp::compare_wall_reports(&old, &new)?;
                // Host wall-clock ratios are a trend signal, never a
                // gate: print and succeed regardless of direction.
                print!("{}", neomem_bench::wallcmp::render(&rows));
                Ok(true)
            })
        }
        Command::Compare(baseline_path, current_path) => {
            load_json(&baseline_path).and_then(|baseline| {
                load_json(&current_path).map(|current| {
                    let report = compare(&baseline, &current, &gate_config);
                    print!("{}", report.summary());
                    report.passed()
                })
            })
        }
        Command::Gate(figure) => {
            let baseline_path = options.baseline.as_deref().expect("validated in parse_args");
            load_json(baseline_path).and_then(|baseline| {
                run_and_write(figure, &ctx, &options.out_dir).map(|(current, _)| {
                    let report = compare(&baseline, &current, &gate_config);
                    print!("{}", report.summary());
                    report.passed()
                })
            })
        }
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("neomem-bench: {message}");
            ExitCode::FAILURE
        }
    }
}
