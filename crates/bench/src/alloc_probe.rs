//! Host heap-allocation probe for the engine micro-bench.
//!
//! The library forbids unsafe code, so the counting
//! `#[global_allocator]` lives in the binaries (the `micro_engine`
//! bench target and the `neomem-bench` CLI own their crate roots);
//! they register their allocation counter here and the `micro_engine`
//! figure reads it to report — and, in the bench target, assert —
//! steady-state allocation behaviour of the simulation hot loop. When
//! no probe is registered (e.g. the library's own tests) the figure
//! reports the probe as inactive and skips the check.
//!
//! Allocation counts are host-side observations: they go to stderr,
//! never into the deterministic result JSON.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

static COUNTER: OnceLock<&'static AtomicU64> = OnceLock::new();

/// Registers the counter the installed global allocator increments on
/// every allocation. Later registrations are ignored (first wins).
pub fn install(counter: &'static AtomicU64) {
    let _ = COUNTER.set(counter);
}

/// Heap allocations observed so far, or `None` when no probe is
/// installed.
pub fn count() -> Option<u64> {
    COUNTER.get().map(|c| c.load(Ordering::Relaxed))
}

/// Expands to the counting global allocator plus an `install_probe()`
/// helper, for use in a **binary** crate root. One definition here
/// keeps the bench target and the CLI counting identically; the macro
/// form keeps the `unsafe impl GlobalAlloc` out of this library, which
/// forbids unsafe code.
#[macro_export]
macro_rules! counting_allocator {
    () => {
        static ALLOCATIONS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

        struct CountingAlloc;

        // SAFETY: defers every operation to the system allocator
        // unchanged; the counter increment is a pure side effect.
        unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
            unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
                ALLOCATIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                std::alloc::System.alloc(layout)
            }
            unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
                std::alloc::System.dealloc(ptr, layout)
            }
            unsafe fn realloc(
                &self,
                ptr: *mut u8,
                layout: std::alloc::Layout,
                new_size: usize,
            ) -> *mut u8 {
                ALLOCATIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                std::alloc::System.realloc(ptr, layout, new_size)
            }
            unsafe fn alloc_zeroed(&self, layout: std::alloc::Layout) -> *mut u8 {
                ALLOCATIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                std::alloc::System.alloc_zeroed(layout)
            }
        }

        #[global_allocator]
        static GLOBAL_COUNTING_ALLOC: CountingAlloc = CountingAlloc;

        /// Registers the allocator's counter with
        /// [`neomem_bench::alloc_probe`]. Call first thing in `main`.
        fn install_probe() {
            $crate::alloc_probe::install(&ALLOCATIONS);
        }
    };
}

#[cfg(test)]
mod tests {
    // `count()` state is process-global, so the only safely testable
    // claim from inside the library (which never installs a probe
    // itself) is the API shape; install/readback is covered by the
    // micro_engine bench target.
    #[test]
    fn probe_api_is_callable() {
        let _ = super::count();
    }
}
