//! Wall-report comparison: per-figure throughput ratios between two
//! `--wall-report` JSON documents.
//!
//! Wall-clock numbers are host-side and nondeterministic, so they are
//! never gated — this module exists purely so before/after perf claims
//! are one `neomem-bench perf ... --compare OLD.json` invocation
//! instead of hand-diffed JSON. The rendering is a plain text table:
//! one row per figure present in the *new* report (figures only in the
//! old report are listed as retired), plus the totals row.

use neomem::types::json::Json;

/// One figure's before/after throughput, in accesses per wall second.
#[derive(Debug, Clone, PartialEq)]
pub struct WallRatio {
    /// Figure name (or `"total"` for the aggregate row).
    pub figure: String,
    /// Throughput in the old report; `None` when the figure is new.
    pub old: Option<f64>,
    /// Throughput in the new report.
    pub new: f64,
}

impl WallRatio {
    /// `new / old`, when the figure exists in both reports with a
    /// positive old throughput.
    pub fn ratio(&self) -> Option<f64> {
        match self.old {
            Some(old) if old > 0.0 => Some(self.new / old),
            _ => None,
        }
    }
}

/// Extracts `figure -> accesses_per_wall_second` pairs from a wall
/// report, `entries` first and the `total` aggregate last.
fn throughputs(report: &Json) -> Result<Vec<(String, f64)>, String> {
    let entries = report
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("wall report has no entries array — is this a --wall-report file?")?;
    let mut out = Vec::with_capacity(entries.len() + 1);
    for entry in entries {
        let figure = entry
            .get("figure")
            .and_then(Json::as_str)
            .ok_or("wall report entry without a figure name")?;
        let aps = entry
            .get("accesses_per_wall_second")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("entry {figure} lacks accesses_per_wall_second"))?;
        out.push((figure.to_string(), aps));
    }
    if let Some(total) =
        report.get("total").and_then(|t| t.get("accesses_per_wall_second")).and_then(Json::as_f64)
    {
        out.push(("total".to_string(), total));
    }
    Ok(out)
}

/// Compares two wall reports figure by figure.
///
/// # Errors
///
/// Returns a message when either document is not a wall report.
pub fn compare_wall_reports(old: &Json, new: &Json) -> Result<Vec<WallRatio>, String> {
    let old_rows = throughputs(old)?;
    let new_rows = throughputs(new)?;
    let lookup = |name: &str| old_rows.iter().find(|(f, _)| f == name).map(|&(_, aps)| aps);
    Ok(new_rows
        .into_iter()
        .map(|(figure, aps)| WallRatio { old: lookup(&figure), new: aps, figure })
        .collect())
}

/// Renders the comparison as the table `perf --compare` prints: one
/// row per figure with old/new M accesses/s and the ratio.
pub fn render(ratios: &[WallRatio]) -> String {
    let mut out = String::from(
        "figure            old M acc/s    new M acc/s    new/old\n",
    );
    for row in ratios {
        let old = row
            .old
            .map(|aps| format!("{:>11.2}", aps / 1e6))
            .unwrap_or_else(|| format!("{:>11}", "-"));
        let ratio = row
            .ratio()
            .map(|r| format!("{r:>9.2}x"))
            .unwrap_or_else(|| format!("{:>10}", "new"));
        out.push_str(&format!(
            "{:<16}  {old}    {:>11.2}    {ratio}\n",
            row.figure,
            row.new / 1e6,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(entries: &[(&str, f64)], total: f64) -> Json {
        Json::obj([
            (
                "entries",
                Json::Arr(
                    entries
                        .iter()
                        .map(|&(figure, aps)| {
                            Json::obj([
                                ("figure", Json::from(figure)),
                                ("accesses_per_wall_second", Json::F64(aps)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("total", Json::obj([("accesses_per_wall_second", Json::F64(total))])),
        ])
    }

    #[test]
    fn ratios_follow_matching_figures() {
        let old = report(&[("corun", 10e6), ("micro_engine", 5e6)], 7.5e6);
        let new = report(&[("corun", 20e6), ("fresh", 3e6)], 9e6);
        let rows = compare_wall_reports(&old, &new).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].figure, "corun");
        assert!((rows[0].ratio().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(rows[1].figure, "fresh");
        assert_eq!(rows[1].ratio(), None, "figure absent from the old report");
        assert_eq!(rows[2].figure, "total");
        assert!((rows[2].ratio().unwrap() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn render_lists_every_row() {
        let old = report(&[("corun", 10e6)], 10e6);
        let new = report(&[("corun", 12e6)], 12e6);
        let rows = compare_wall_reports(&old, &new).unwrap();
        let table = render(&rows);
        assert!(table.contains("corun"), "{table}");
        assert!(table.contains("1.20x"), "{table}");
        assert!(table.lines().count() >= 3, "{table}");
    }

    #[test]
    fn non_wall_reports_are_rejected() {
        let bogus = Json::obj([("kind", Json::from("results"))]);
        assert!(compare_wall_reports(&bogus, &bogus).is_err());
    }
}
