//! Table VI — Transparent Huge Pages vs base pages on Page-Rank:
//! NeoMem vs TPP, THP on/off.
//!
//! The paper: NeoMem+THP beats NeoMem+base (7.02 GB of huge pages
//! migrated); TPP+THP *regresses* because its time resolution is too low
//! to accumulate per-region heat.
//!
//! The four configurations construct concrete policy types (to toggle
//! THP fields the trait does not expose), so they run on the worker
//! pool directly rather than through a grid.

use neomem::policies::{
    HintFaultPolicy, HintFaultPolicyConfig, NeoMemParams, NeoMemPolicy,
};
use neomem::prelude::*;
use neomem::profilers::NeoProfDriverConfig;
use neomem_runner::{metrics_json, run_indexed, Json};

use super::RunContext;
use crate::{header, row, Scale};

struct Outcome {
    report: RunReport,
    promoted_base: Bytes,
    promoted_huge: Bytes,
}

fn run_config(policy_kind: &str, thp: bool, scale: Scale) -> Outcome {
    let rss = 8192u64;
    let mut config = SimConfig::quick(rss, 2);
    config.max_accesses = scale.accesses(1_500_000);
    let mem = config.memory_config();
    let slow_base = neomem::types::PageNum::new(mem.fast.capacity_frames);
    let mquota = Bandwidth::from_mib_per_sec(256);

    // Track huge-page bytes through concrete policy types.
    let workload = WorkloadKind::PageRank.build(rss, 2024);
    match policy_kind {
        "NeoMem" => {
            let mut params = NeoMemParams::scaled(1000);
            params.thp = thp;
            params.thp_votes = 2;
            let policy = NeoMemPolicy::new(
                neomem::neoprof::NeoProfConfig::paper_default(slow_base),
                NeoProfDriverConfig::default(),
                params,
            )
            .expect("valid device");
            run_with(config, workload, policy)
        }
        "TPP" => {
            let mut cfg = HintFaultPolicyConfig::tpp().scaled(1000);
            cfg.thp = thp;
            let policy = HintFaultPolicy::new(cfg, mquota);
            run_with(config, workload, policy)
        }
        other => panic!("unknown policy {other}"),
    }
}

fn run_with(
    config: SimConfig,
    workload: Box<dyn neomem::workloads::Workload>,
    policy: impl Into<neomem::policies::PolicyBox>,
) -> Outcome {
    let report = Simulation::new(config, workload, policy).expect("valid sim").run();
    let huge = report.promoted_huge_bytes;
    let base = Bytes::new(report.kernel.promoted_bytes.as_u64().saturating_sub(huge.as_u64()));
    Outcome { report, promoted_base: base, promoted_huge: huge }
}

/// Runs the table.
pub fn run(ctx: &RunContext) -> Json {
    header(
        "Table VI: Transparent Huge Page vs base page on Page-Rank",
        "paper Table VI (NeoMem-THP fastest; TPP barely migrates and regresses with THP)",
    );
    let configs = [("NeoMem", true), ("TPP", true), ("NeoMem", false), ("TPP", false)];
    let outcomes =
        run_indexed(&configs, ctx.threads, |_, &(name, thp)| run_config(name, thp, ctx.scale));
    println!(
        "{}",
        row(&[
            "config".into(),
            "build".into(),
            "avg iter".into(),
            "total".into(),
            "base promoted".into(),
            "huge promoted".into(),
        ])
    );
    let mut runs = Vec::new();
    for ((name, thp), out) in configs.iter().zip(&outcomes) {
        let r = &out.report;
        let config_label = format!("{name} {}", if *thp { "THP" } else { "Base" });
        let build = r
            .markers
            .iter()
            .find(|m| m.label == "graph-built")
            .map(|m| format!("{:.2}ms", m.at.as_millis_f64()))
            .unwrap_or_else(|| "-".into());
        let iters: Vec<f64> = (1..=16)
            .filter_map(|i| r.marker_duration("iteration", i))
            .map(|d| d.as_millis_f64())
            .collect();
        let avg_iter = if iters.is_empty() {
            "-".to_string()
        } else {
            format!("{:.2}ms", iters.iter().sum::<f64>() / iters.len() as f64)
        };
        runs.push(Json::obj([
            ("config", Json::from(config_label.as_str())),
            ("thp", Json::Bool(*thp)),
            ("promoted_base_bytes", Json::U64(out.promoted_base.as_u64())),
            ("promoted_huge_bytes", Json::U64(out.promoted_huge.as_u64())),
            ("metrics", metrics_json(r)),
        ]));
        println!(
            "{}",
            row(&[
                config_label,
                build,
                avg_iter,
                format!("{:.2}ms", r.runtime.as_millis_f64()),
                format!("{}", out.promoted_base),
                format!("{}", out.promoted_huge),
            ])
        );
    }
    Json::obj([("runs", Json::Arr(runs))])
}
