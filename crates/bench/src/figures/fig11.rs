//! Fig. 11 — end-to-end performance comparison: eight benchmarks × six
//! tiering solutions, normalised to PEBS (higher is better).
//!
//! Also reports the §VI-D NeoProf CPU-overhead measurement (the paper
//! reports a 0.021 % slowdown with profiling enabled but migration
//! disabled).

use neomem::prelude::*;
use neomem_runner::Json;

use super::RunContext;
use crate::{geomean, header, paper_grid, row};

/// Runs the figure.
pub fn run(ctx: &RunContext) -> Json {
    header(
        "Fig. 11: end-to-end performance (normalised to PEBS, higher is better)",
        "paper Fig. 11 (NeoMem achieves 32%-67% geomean speedup)",
    );
    let policies = PolicyKind::FIG11;
    let main = paper_grid("fig11/main", ctx.scale)
        .workloads(WorkloadKind::FIG11)
        .policies(policies)
        .run_mode(&ctx.grid_mode())
        .expect("valid fig11 grid");

    let mut labels: Vec<String> = vec!["benchmark".into()];
    labels.extend(policies.iter().map(|p| p.label().to_string()));
    println!("{}", row(&labels));

    // Per-policy relative performance across benchmarks (vs PEBS).
    let mut rel: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    let mut normalised = Vec::new();
    for wl in WorkloadKind::FIG11 {
        let runtimes: Vec<f64> = policies
            .iter()
            .map(|&p| main.report_for(wl, p).runtime.as_nanos() as f64)
            .collect();
        let pebs_runtime = main.report_for(wl, PolicyKind::Pebs).runtime.as_nanos() as f64;
        let mut cells = vec![wl.label().to_string()];
        let mut series = Vec::new();
        for (i, rt) in runtimes.iter().enumerate() {
            let norm = pebs_runtime / rt;
            rel[i].push(norm);
            series.push((policies[i].label().to_string(), Json::F64(norm)));
            cells.push(format!("{norm:.2}"));
        }
        normalised.push((wl.label().to_string(), Json::Obj(series)));
        println!("{}", row(&cells));
    }
    let mut cells = vec!["Geomean".to_string()];
    let mut geomeans = Vec::new();
    for series in &rel {
        let g = geomean(series);
        geomeans.push(g);
        cells.push(format!("{g:.2}"));
    }
    println!("{}", row(&cells));

    let neomem_g = geomeans[0];
    println!("\nNeoMem geomean speedups over baselines:");
    for (i, p) in policies.iter().enumerate().skip(1) {
        println!("  vs {:<18} {:+.0}%", p.label(), (neomem_g / geomeans[i] - 1.0) * 100.0);
    }

    // §VI-D: NeoProf CPU overhead on GUPS — the host's only cost is the
    // MMIO traffic of the daemon readouts, reported as a share of the
    // run's total time (the paper measures 0.021% by toggling NeoProf).
    header("§VI-D: CPU overhead of NeoMem profiling (GUPS)", "paper reports 0.021% slowdown");
    let overhead = paper_grid("fig11/overhead", ctx.scale)
        .workloads([WorkloadKind::Gups])
        .policies([PolicyKind::NeoMem])
        .budgets([ctx.scale.accesses(400_000)])
        .run_mode(&ctx.grid_mode())
        .expect("valid overhead grid");
    let profiled = overhead.report_for(WorkloadKind::Gups, PolicyKind::NeoMem);
    let share =
        profiled.profiling_overhead.as_nanos() as f64 / profiled.runtime.as_nanos() as f64;
    println!("host MMIO time:          {}", profiled.profiling_overhead);
    println!("share of total runtime:  {:.4}%", share * 100.0);

    Json::obj([
        ("grids", Json::Arr(vec![main.to_json(), overhead.to_json()])),
        (
            "series",
            Json::obj([
                ("normalised_to_pebs", Json::Obj(normalised)),
                (
                    "geomean_vs_pebs",
                    Json::Obj(
                        policies
                            .iter()
                            .zip(&geomeans)
                            .map(|(p, g)| (p.label().to_string(), Json::F64(*g)))
                            .collect(),
                    ),
                ),
                ("profiling_overhead_share", Json::F64(share)),
            ]),
        ),
    ])
}
