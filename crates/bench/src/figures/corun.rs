//! Co-run — multi-tenant workloads contending for the fast tier.
//!
//! Not a paper figure: the paper evaluates one workload at a time,
//! while real tiered-memory deployments co-locate tenants. This figure
//! exercises the co-run engine three ways:
//!
//! 1. **Mixes**: representative tenant mixes under NeoMem vs
//!    first-touch — does hardware-assisted tiering still pay off when
//!    the fast tier is contended?
//! 2. **Fairness**: the NeoMem fast-tier share cap swept on one mix —
//!    what does enforcing proportional occupancy cost/buy?
//! 3. **Scaling**: 1 → 2 → 4 identical tenants — how does contention
//!    grow with tenant count?
//!
//! The payload carries only simulated (virtual-clock) quantities, so
//! the JSON is byte-identical at any `--threads` value and at any
//! `SimConfig::batch_size` (the co-run determinism contract, enforced
//! by `neomem_sim`'s `corun_determinism` tests and re-checked by the
//! thread-invariance test in this crate).

use neomem::prelude::*;
use neomem_runner::{ExperimentGrid, Json};

use super::RunContext;
use crate::{header, row, Scale};

/// The representative tenant mixes: homogeneous, complementary, and a
/// four-way free-for-all. Public so the scheduler-equivalence suite
/// can prove the dynamic scheduler bit-identical on exactly the mixes
/// this figure gates.
///
/// The seed literals (2024, 2025, …) match what the grid path derives:
/// `ExperimentGrid::corun` re-seeds every cell's mix from the seed axis
/// as `cell seed + tenant index`, and these grids put 2024 on that
/// axis — so the literals document the effective seeds rather than
/// choosing them. Editing them here changes nothing for the figure;
/// change the grid's `.seeds([...])` instead.
pub fn mixes() -> Vec<(&'static str, TenantMix)> {
    vec![
        (
            "2xGUPS",
            TenantMix::homogeneous(WorkloadKind::Gups, 2, 2048, 2024).expect("valid mix"),
        ),
        (
            "GUPS+Page-Rank",
            TenantMix::builder()
                .tenant(WorkloadKind::Gups, 2048, 2024)
                .tenant(WorkloadKind::PageRank, 2048, 2025)
                .build()
                .expect("valid mix"),
        ),
        (
            "quad-mix",
            TenantMix::builder()
                .tenant(WorkloadKind::Gups, 1536, 2024)
                .tenant(WorkloadKind::PageRank, 1536, 2025)
                .tenant(WorkloadKind::Silo, 1536, 2026)
                .tenant(WorkloadKind::XsBench, 1536, 2027)
                .build()
                .expect("valid mix"),
        ),
    ]
}

/// The shared grid shell: paper seed/cadence conventions at a co-run
/// budget.
fn corun_grid(name: &str, scale: Scale) -> ExperimentGrid {
    ExperimentGrid::new(name)
        .workloads([])
        .ratios([2])
        .seeds([2024])
        .budgets([scale.accesses(600_000)])
        .time_scale(1000)
}

fn fairness_overrides(cap: Option<f64>) -> PolicyOverrides {
    PolicyOverrides { corun_fast_share_cap: cap, ..Default::default() }
}

/// Runs the figure.
pub fn run(ctx: &RunContext) -> Json {
    header(
        "Co-run: concurrent tenants contending for the fast tier",
        "no paper figure — new multi-tenant experiment on the paper's machine model",
    );

    // 1. Mixes under NeoMem vs first-touch.
    let mix_defs = mixes();
    let mut grid = corun_grid("corun/mixes", ctx.scale)
        .policies([PolicyKind::NeoMem, PolicyKind::FirstTouch]);
    for (label, mix) in &mix_defs {
        grid = grid.corun(*label, mix.clone());
    }
    let mixes_run = grid.run_mode(&ctx.grid_mode()).expect("valid corun mixes grid");

    println!(
        "{}",
        row(&[
            "mix".into(),
            "policy".into(),
            "runtime".into(),
            "slow-tier".into(),
            "x-evictions".into(),
            "fairness".into(),
        ])
    );
    let mut mix_series = Vec::new();
    for (label, _) in &mix_defs {
        let label = *label;
        let mut per_policy = Vec::new();
        for policy in [PolicyKind::NeoMem, PolicyKind::FirstTouch] {
            let cell = mixes_run.corun_for(label, policy, "");
            let sections = cell.corun.as_ref().expect("corun cell");
            println!(
                "{}",
                row(&[
                    label.to_string(),
                    policy.label().to_string(),
                    format!("{}", cell.report.runtime),
                    format!("{}", cell.report.slow_tier_accesses()),
                    format!("{}", sections.contention.cross_tenant_evictions),
                    format!("{:.3}", sections.occupancy_fairness),
                ])
            );
            per_policy.push((
                policy.label().to_string(),
                Json::obj([
                    ("runtime_ns", Json::U64(cell.report.runtime.as_nanos())),
                    (
                        "cross_tenant_evictions",
                        Json::U64(sections.contention.cross_tenant_evictions),
                    ),
                    ("occupancy_fairness", Json::F64(sections.occupancy_fairness)),
                ]),
            ));
        }
        let neomem = mixes_run.corun_for(label, PolicyKind::NeoMem, "").report.runtime;
        let ft = mixes_run.corun_for(label, PolicyKind::FirstTouch, "").report.runtime;
        per_policy.push((
            "first_touch_over_neomem".to_string(),
            Json::F64(ft.as_nanos() as f64 / neomem.as_nanos() as f64),
        ));
        mix_series.push((label.to_string(), Json::Obj(per_policy)));
    }

    // 2. Fairness-cap sweep on the complementary mix.
    header(
        "Fast-tier fairness cap (NeoMem, GUPS+Page-Rank)",
        "per-tenant occupancy capped at cap x weighted fair share",
    );
    let caps: [(&str, Option<f64>); 3] =
        [("uncapped", None), ("cap1.5", Some(1.5)), ("cap1.0", Some(1.0))];
    let fairness_run = corun_grid("corun/fairness", ctx.scale)
        .corun("GUPS+Page-Rank", mix_defs[1].1.clone())
        .policies([PolicyKind::NeoMem])
        .overrides_axis(
            caps.iter().map(|(label, cap)| (label.to_string(), fairness_overrides(*cap))),
        )
        .run_mode(&ctx.grid_mode())
        .expect("valid corun fairness grid");
    println!(
        "{}",
        row(&["cap".into(), "runtime".into(), "fairness".into(), "x-evictions".into()])
    );
    let mut fairness_series = Vec::new();
    for (label, _) in &caps {
        let cell = fairness_run.corun_for("GUPS+Page-Rank", PolicyKind::NeoMem, label);
        let sections = cell.corun.as_ref().expect("corun cell");
        println!(
            "{}",
            row(&[
                label.to_string(),
                format!("{}", cell.report.runtime),
                format!("{:.3}", sections.occupancy_fairness),
                format!("{}", sections.contention.cross_tenant_evictions),
            ])
        );
        fairness_series.push((
            label.to_string(),
            Json::obj([
                ("runtime_ns", Json::U64(cell.report.runtime.as_nanos())),
                ("occupancy_fairness", Json::F64(sections.occupancy_fairness)),
                (
                    "cross_tenant_evictions",
                    Json::U64(sections.contention.cross_tenant_evictions),
                ),
            ]),
        ));
    }

    // 3. Tenant-count scaling: identical tenants, identical per-tenant
    // footprint, so the per-tenant fast-tier share shrinks with count.
    header(
        "Tenant-count scaling (NeoMem, GUPS x N)",
        "fixed per-tenant footprint; contention grows with tenant count",
    );
    let counts = [1usize, 2, 4];
    let mut scaling = corun_grid("corun/scaling", ctx.scale).policies([PolicyKind::NeoMem]);
    for &n in &counts {
        let mix = TenantMix::homogeneous(WorkloadKind::Gups, n, 2048, 2024).expect("valid mix");
        scaling = scaling.corun(format!("{n}xGUPS"), mix);
    }
    let scaling_run = scaling.run_mode(&ctx.grid_mode()).expect("valid corun scaling grid");
    println!(
        "{}",
        row(&["tenants".into(), "runtime".into(), "slow-tier".into(), "x-evictions".into()])
    );
    let mut scaling_series = Vec::new();
    for &n in &counts {
        let label = format!("{n}xGUPS");
        let cell = scaling_run.corun_for(&label, PolicyKind::NeoMem, "");
        let sections = cell.corun.as_ref().expect("corun cell");
        println!(
            "{}",
            row(&[
                format!("{n}"),
                format!("{}", cell.report.runtime),
                format!("{}", cell.report.slow_tier_accesses()),
                format!("{}", sections.contention.cross_tenant_evictions),
            ])
        );
        scaling_series.push((
            label,
            Json::obj([
                ("runtime_ns", Json::U64(cell.report.runtime.as_nanos())),
                ("slow_tier_accesses", Json::U64(cell.report.slow_tier_accesses())),
                (
                    "cross_tenant_evictions",
                    Json::U64(sections.contention.cross_tenant_evictions),
                ),
            ]),
        ));
    }

    Json::obj([
        (
            "grids",
            Json::Arr(vec![mixes_run.to_json(), fairness_run.to_json(), scaling_run.to_json()]),
        ),
        (
            "series",
            Json::obj([
                ("mixes", Json::Obj(mix_series)),
                ("fairness_sweep", Json::Obj(fairness_series)),
                ("tenant_scaling", Json::Obj(scaling_series)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use neomem_runner::GridRun;

    /// The mixes-grid shape at a test-sized budget, through the exact
    /// figure path.
    fn tiny_mixes_run(threads: usize) -> GridRun {
        let mut grid = ExperimentGrid::new("corun/tiny")
            .workloads([])
            .ratios([2])
            .seeds([2024])
            .budgets([20_000])
            .time_scale(1000)
            .policies([PolicyKind::NeoMem, PolicyKind::FirstTouch]);
        for (label, mix) in mixes() {
            grid = grid.corun(label, mix);
        }
        grid.run(threads).expect("valid tiny corun grid")
    }

    #[test]
    fn corun_grid_json_is_thread_invariant_through_the_figure_path() {
        // The figure's own grid shape, at a test-sized budget: JSON
        // must be byte-identical at 1 vs 4 worker threads.
        let one = tiny_mixes_run(1).to_json().render_pretty();
        let four = tiny_mixes_run(4).to_json().render_pretty();
        assert_eq!(one, four);
    }

    #[test]
    fn mixes_are_valid_and_distinctly_labelled() {
        let ms = mixes();
        assert_eq!(ms.len(), 3);
        let mut labels: Vec<&str> = ms.iter().map(|(l, _)| *l).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 3, "duplicate mix labels");
        for (_, mix) in &ms {
            assert!(mix.total_rss_pages() >= 4096);
        }
    }
}
