//! Scenarios — dynamic tenancy on the co-run machine.
//!
//! Not a paper figure: the paper (and the `corun` figure) holds the
//! tenant population fixed for a whole run, while production
//! multi-tenant hosts see churn — tenants starting, stopping and
//! changing behaviour mid-run. This figure drives the scenario engine
//! ([`CoRunSimulation::with_scenario`]) three ways:
//!
//! 1. **Churn sweep**: a resident GUPS tenant joined by a Silo tenant
//!    that arrives and departs 0×/1×/2× over the run — what does tenant
//!    churn cost the resident, and how much fast-tier reclaim does each
//!    departure trigger?
//! 2. **Phase-shift sweep**: a resident GUPS tenant co-running with a
//!    phased tenant that flips between GUPS-like and Silo-like
//!    behaviour (and halves its working set) every N events — how fast
//!    does NeoMem re-converge as the phase length shrinks?
//! 3. **Contention duel**: a weight-3 GUPS antagonist against a
//!    weight-1 Silo victim, plain NeoMem vs the contention-aware
//!    variant (`NeoMem-CA`) that throttles aggressors' promotion quota
//!    using the cross-tenant-eviction signal.
//!
//! The payload carries only simulated (virtual-clock) quantities, so
//! the JSON is byte-identical at any `--threads` value and at any
//! `SimConfig::batch_size`, like every other figure.

use neomem::prelude::*;
use neomem_runner::{ExperimentGrid, Json};

use super::RunContext;
use crate::{header, row, Scale};

/// The resident + churner mix shared by the churn scenarios.
fn churn_mix() -> TenantMix {
    TenantMix::builder()
        .tenant(WorkloadKind::Gups, 2048, 2024)
        .tenant(WorkloadKind::Silo, 2048, 2025)
        .build()
        .expect("valid mix")
}

/// The churn sweep: the Silo tenant arrives/departs `cycles` times.
/// Cycle windows sit well inside the quick-scale run (~50 ms of
/// virtual time at the 600 k access budget).
fn churn_scenario(cycles: usize) -> Scenario {
    let mut builder = Scenario::builder(churn_mix());
    if cycles > 0 {
        // The churner starts idle and cycles through residency windows.
        let window = Nanos::from_millis(8);
        let gap = Nanos::from_millis(4);
        let mut at = Nanos::from_millis(4);
        for _ in 0..cycles {
            builder = builder.arrive(1, at);
            at += window;
            builder = builder.depart(1, at);
            at += gap;
        }
    }
    builder.build().expect("valid churn scenario")
}

/// The phase-shift sweep: tenant 1 alternates GUPS-like and Silo-like
/// phases of `phase_events` events, halving its working set in the
/// Silo phase.
fn phase_scenario(phase_events: u64) -> Scenario {
    Scenario::builder(churn_mix())
        .phased(
            1,
            vec![
                PhaseSpec { kind: WorkloadKind::Gups, rss_pages: 2048, events: phase_events },
                PhaseSpec { kind: WorkloadKind::Silo, rss_pages: 1024, events: phase_events },
            ],
        )
        .build()
        .expect("valid phase scenario")
}

/// The contention duel: a weight-3 GUPS antagonist vs a weight-1 Silo
/// victim, as a steady scenario (no timeline events — the duel is
/// about the policy, not churn).
fn duel_scenario() -> Scenario {
    let mix = TenantMix::builder()
        .weighted_tenant(WorkloadKind::Gups, 2048, 3, 2024)
        .tenant(WorkloadKind::Silo, 2048, 2025)
        .build()
        .expect("valid mix");
    Scenario::steady(mix)
}

/// The shared grid shell: paper seed/cadence conventions at the co-run
/// budget.
fn scenario_grid(name: &str, scale: Scale) -> ExperimentGrid {
    ExperimentGrid::new(name)
        .workloads([])
        .ratios([2])
        .seeds([2024])
        .budgets([scale.accesses(600_000)])
        .time_scale(1000)
}

/// Runs the figure.
pub fn run(ctx: &RunContext) -> Json {
    header(
        "Scenarios: tenant churn, phased workloads, contention-aware tiering",
        "no paper figure — dynamic tenancy on the paper's machine model",
    );

    // 1. Churn sweep under NeoMem.
    let cycles = [0usize, 1, 2];
    let mut churn = scenario_grid("scenarios/churn", ctx.scale).policies([PolicyKind::NeoMem]);
    for &n in &cycles {
        churn = churn.scenario(format!("churn{n}"), churn_scenario(n));
    }
    let churn_run = churn.run_mode(&ctx.grid_mode()).expect("valid churn grid");
    println!(
        "{}",
        row(&[
            "cycles".into(),
            "runtime".into(),
            "x-evictions".into(),
            "reclaims".into(),
            "resident slow".into(),
        ])
    );
    let mut churn_series = Vec::new();
    for &n in &cycles {
        let label = format!("churn{n}");
        let cell = churn_run.scenario_for(&label, PolicyKind::NeoMem, "");
        let corun = cell.corun.as_ref().expect("corun sections");
        let scenario = cell.scenario.as_ref().expect("scenario sections");
        // The churner's departures show up as demotions attributed to
        // it at each retire (the normal-eviction reclaim path).
        let churner_demotions = corun.tenants[1].demotions;
        println!(
            "{}",
            row(&[
                format!("{n}"),
                format!("{}", cell.report.runtime),
                format!("{}", corun.contention.cross_tenant_evictions),
                format!("{churner_demotions}"),
                format!("{}", corun.tenants[0].slow_tier_accesses()),
            ])
        );
        churn_series.push((
            label,
            Json::obj([
                ("runtime_ns", Json::U64(cell.report.runtime.as_nanos())),
                (
                    "cross_tenant_evictions",
                    Json::U64(corun.contention.cross_tenant_evictions),
                ),
                ("churner_demotions", Json::U64(churner_demotions)),
                (
                    "resident_slow_tier_accesses",
                    Json::U64(corun.tenants[0].slow_tier_accesses()),
                ),
                ("epochs", Json::U64(scenario.epochs.len() as u64)),
            ]),
        ));
    }

    // 2. Phase-shift sweep under NeoMem.
    header(
        "Phase shifts (NeoMem, GUPS + phased co-runner)",
        "phased tenant flips GUPS-like <-> Silo-like every N events",
    );
    let phase_lengths: [u64; 3] = [
        ctx.scale.accesses(50_000),
        ctx.scale.accesses(100_000),
        ctx.scale.accesses(200_000),
    ];
    let mut phases = scenario_grid("scenarios/phases", ctx.scale).policies([PolicyKind::NeoMem]);
    for &events in &phase_lengths {
        phases = phases.scenario(format!("phase{events}"), phase_scenario(events));
    }
    let phases_run = phases.run_mode(&ctx.grid_mode()).expect("valid phases grid");
    println!(
        "{}",
        row(&[
            "phase events".into(),
            "runtime".into(),
            "promotions".into(),
            "slow-tier".into(),
            "shifts".into(),
        ])
    );
    let mut phase_series = Vec::new();
    for &events in &phase_lengths {
        let label = format!("phase{events}");
        let cell = phases_run.scenario_for(&label, PolicyKind::NeoMem, "");
        let corun = cell.corun.as_ref().expect("corun sections");
        println!(
            "{}",
            row(&[
                format!("{events}"),
                format!("{}", cell.report.runtime),
                format!("{}", cell.report.kernel.promotions),
                format!("{}", cell.report.slow_tier_accesses()),
                format!("{}", corun.tenants[1].markers),
            ])
        );
        phase_series.push((
            label,
            Json::obj([
                ("runtime_ns", Json::U64(cell.report.runtime.as_nanos())),
                ("promotions", Json::U64(cell.report.kernel.promotions)),
                ("slow_tier_accesses", Json::U64(cell.report.slow_tier_accesses())),
                ("phase_shifts", Json::U64(corun.tenants[1].markers)),
            ]),
        ));
    }

    // 3. Contention-aware vs plain NeoMem under an antagonist.
    header(
        "Contention duel (3*GUPS antagonist vs Silo victim)",
        "NeoMem-CA throttles aggressors' promotion quota via the cross-tenant-eviction signal",
    );
    let duel_policies = [PolicyKind::NeoMem, PolicyKind::NeoMemContentionAware];
    let duel_run = scenario_grid("scenarios/contention", ctx.scale)
        .scenario("duel", duel_scenario())
        .policies(duel_policies)
        .run_mode(&ctx.grid_mode())
        .expect("valid contention grid");
    println!(
        "{}",
        row(&[
            "policy".into(),
            "runtime".into(),
            "victim evicted".into(),
            "victim slow".into(),
            "fairness".into(),
        ])
    );
    let mut duel_series = Vec::new();
    for policy in duel_policies {
        let cell = duel_run.scenario_for("duel", policy, "");
        let corun = cell.corun.as_ref().expect("corun sections");
        let victim = &corun.tenants[1];
        println!(
            "{}",
            row(&[
                policy.label().to_string(),
                format!("{}", cell.report.runtime),
                format!("{}", victim.evicted_by_others),
                format!("{}", victim.slow_tier_accesses()),
                format!("{:.3}", corun.occupancy_fairness),
            ])
        );
        duel_series.push((
            policy.label().to_string(),
            Json::obj([
                ("runtime_ns", Json::U64(cell.report.runtime.as_nanos())),
                ("victim_evicted_by_others", Json::U64(victim.evicted_by_others)),
                ("victim_slow_tier_accesses", Json::U64(victim.slow_tier_accesses())),
                ("occupancy_fairness", Json::F64(corun.occupancy_fairness)),
            ]),
        ));
    }

    Json::obj([
        (
            "grids",
            Json::Arr(vec![churn_run.to_json(), phases_run.to_json(), duel_run.to_json()]),
        ),
        (
            "series",
            Json::obj([
                ("churn_sweep", Json::Obj(churn_series)),
                ("phase_sweep", Json::Obj(phase_series)),
                ("contention_duel", Json::Obj(duel_series)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use neomem_runner::GridRun;

    #[test]
    fn scenarios_are_valid_and_cover_the_three_shapes() {
        for n in [0usize, 1, 2] {
            let s = churn_scenario(n);
            assert_eq!(s.arrivals(), n);
            assert_eq!(s.departures(), n);
        }
        // Churn cycles keep the churner idle at the start.
        assert_eq!(churn_scenario(1).initially_active(), vec![true, false]);
        assert_eq!(churn_scenario(0).initially_active(), vec![true, true]);
        let p = phase_scenario(10_000);
        assert!(p.phases()[1].is_some());
        assert!(p.events().is_empty());
        let d = duel_scenario();
        assert_eq!(d.mix().tenants()[0].weight, 3);
    }

    /// The churn-grid shape at a test-sized budget, through the exact
    /// figure path.
    fn tiny_churn_run(threads: usize) -> GridRun {
        let mut grid = ExperimentGrid::new("scenarios/tiny")
            .workloads([])
            .ratios([2])
            .seeds([2024])
            .budgets([20_000])
            .time_scale(1000)
            .policies([PolicyKind::NeoMem]);
        for n in [0usize, 1] {
            grid = grid.scenario(format!("churn{n}"), churn_scenario(n));
        }
        grid.run(threads).expect("valid tiny churn grid")
    }

    #[test]
    fn scenario_grid_json_is_thread_invariant_through_the_figure_path() {
        let one = tiny_churn_run(1).to_json().render_pretty();
        let four = tiny_churn_run(4).to_json().render_pretty();
        assert_eq!(one, four);
    }

    #[test]
    fn contention_aware_protects_the_victim() {
        // At a test budget, NeoMem-CA must not leave the victim worse
        // off than plain NeoMem on the eviction signal it consumes.
        let run = ExperimentGrid::new("scenarios/duel-test")
            .workloads([])
            .ratios([2])
            .seeds([2024])
            .budgets([120_000])
            .time_scale(1000)
            .scenario("duel", duel_scenario())
            .policies([PolicyKind::NeoMem, PolicyKind::NeoMemContentionAware])
            .run(2)
            .expect("valid duel grid");
        let plain = run.scenario_for("duel", PolicyKind::NeoMem, "");
        let ca = run.scenario_for("duel", PolicyKind::NeoMemContentionAware, "");
        let evicted = |cell: &neomem_runner::CellRun| {
            cell.corun.as_ref().expect("corun sections").tenants[1].evicted_by_others
        };
        assert!(
            evicted(ca) <= evicted(plain),
            "NeoMem-CA victim evictions {} !<= plain {}",
            evicted(ca),
            evicted(plain)
        );
    }
}
