//! Fig. 3 — Characterizing CXL-enabled commodity hardware.
//!
//! (a) Idle-latency comparison: host DDR vs ideal-CXL vs FPGA prototype.
//! (b) End-to-end slowdown when the workload is pinned entirely to CXL
//!     memory vs entirely to local DRAM.

use neomem::mem::{MemoryNode, NodeConfig, TieredMemoryConfig};
use neomem::prelude::*;
use neomem::sim::SimConfig;
use neomem::types::AccessKind;
use neomem_runner::Json;

use super::RunContext;
use crate::{geomean, header, paper_grid, row};

fn latency_probe(config: NodeConfig) -> Nanos {
    let mut node = MemoryNode::new(config);
    // Pointer-chase: dependent accesses far apart in time → unloaded.
    let mut total = Nanos::ZERO;
    for i in 0..1000u64 {
        total += node.service(AccessKind::Read, Nanos::from_micros(i * 10));
    }
    total / 1000
}

/// Sizes both tiers to hold the full footprint so placement, not
/// capacity, is measured.
fn both_tiers_hold_footprint(config: &mut SimConfig) {
    config.memory = Some(TieredMemoryConfig::with_frames(
        config.rss_pages + 64,
        config.rss_pages + 64,
    ));
}

/// Runs the figure.
pub fn run(ctx: &RunContext) -> Json {
    header(
        "Fig. 3(a): memory latency characterisation",
        "paper Fig. 3a (118 ns local, 170-250 ns ideal CXL, ~430 ns prototype)",
    );
    let local = latency_probe(NodeConfig::ddr_fast(1024));
    let ideal = latency_probe(NodeConfig::cxl_ideal(1024));
    let proto = latency_probe(NodeConfig::cxl_prototype(1024));
    println!("{}", row(&["tier".into(), "latency".into(), "vs local".into()]));
    let mut latencies = Vec::new();
    for (name, lat) in [("Local Mem.", local), ("CXL (Ideal)", ideal), ("CXL (Proto.)", proto)] {
        latencies.push((name.to_string(), Json::U64(lat.as_nanos())));
        println!(
            "{}",
            row(&[
                name.into(),
                format!("{lat}"),
                format!("{:.2}x", lat.as_nanos() as f64 / local.as_nanos() as f64),
            ])
        );
    }

    header(
        "Fig. 3(b): slowdown on CXL-only vs local-only placement",
        "paper Fig. 3b (64%-295% slowdown range)",
    );
    let mut workloads = WorkloadKind::FIG11.to_vec();
    workloads.push(WorkloadKind::Redis);
    let grid = paper_grid("fig03/placement", ctx.scale)
        .workloads(workloads.iter().copied())
        .policies([PolicyKind::PinnedFast, PolicyKind::PinnedSlow])
        .budgets([ctx.scale.accesses(400_000)])
        .configure(both_tiers_hold_footprint)
        .run_mode(&ctx.grid_mode())
        .expect("valid fig03 grid");
    println!("{}", row(&["benchmark".into(), "local".into(), "cxl-only".into(), "slowdown".into()]));
    let mut slowdowns = Vec::new();
    let mut series = Vec::new();
    for &wl in &workloads {
        let fast = grid.report_for(wl, PolicyKind::PinnedFast);
        let slow = grid.report_for(wl, PolicyKind::PinnedSlow);
        let slowdown = slow.runtime.as_nanos() as f64 / fast.runtime.as_nanos() as f64 - 1.0;
        slowdowns.push(1.0 + slowdown);
        series.push((wl.label().to_string(), Json::F64(slowdown)));
        println!(
            "{}",
            row(&[
                wl.label().into(),
                format!("{}", fast.runtime),
                format!("{}", slow.runtime),
                format!("{:+.0}%", slowdown * 100.0),
            ])
        );
    }
    let geo = geomean(&slowdowns) - 1.0;
    println!(
        "{}",
        row(&["Geomean".into(), String::new(), String::new(), format!("{:+.0}%", geo * 100.0)])
    );
    Json::obj([
        ("grids", Json::Arr(vec![grid.to_json()])),
        (
            "series",
            Json::obj([
                ("idle_latency_ns", Json::Obj(latencies)),
                ("cxl_only_slowdown", Json::Obj(series)),
                ("geomean_slowdown", Json::F64(geo)),
            ]),
        ),
    ])
}
