//! Fig. 15 — sensitivity to system and NeoProf parameters.
//!
//! (a) Migration-interval sweep (paper: 10 ms → 5000 ms; shorter wins).
//! (b) Migration-quota sweep (paper: 64 MB/s → 8192 MB/s; sweet spot
//!     around 128–256 MB/s).
//! (c) Sketch-width sweep: estimated error bound (paper: → 0 at 512 K).
//! (d) Sketch-width sweep: end-to-end performance (peaks ≥ 256 K).

use neomem::prelude::*;
use neomem::sketch::{error_bound, CmSketch, SketchParams};
use neomem::types::DevicePage;
use neomem_runner::{run_indexed, GridRun, Json};

use super::RunContext;
use crate::{header, paper_grid, row};

/// A Page-Rank × NeoMem sweep over a labelled override axis.
fn pagerank_sweep(
    name: &str,
    ctx: &RunContext,
    axis: Vec<(String, PolicyOverrides)>,
) -> GridRun {
    paper_grid(name, ctx.scale)
        .workloads([WorkloadKind::PageRank])
        .policies([PolicyKind::NeoMem])
        .overrides_axis(axis)
        .run_mode(&ctx.grid_mode())
        .expect("valid fig15 sweep")
}

fn part_a(ctx: &RunContext) -> GridRun {
    header(
        "Fig. 15(a): migration-interval sweep (Page-Rank)",
        "paper Fig. 15a (shorter interval -> better performance)",
    );
    println!("{}", row(&["interval (scaled)".into(), "runtime".into(), "norm. perf".into()]));
    // The paper sweeps 10 ms → 5000 ms on wall-clock; cadences here are
    // time-scaled by 1000, so the sweep covers the same decade span.
    let axis: Vec<(String, PolicyOverrides)> = [10u64, 50, 100, 500, 1000, 5000]
        .into_iter()
        .map(|micros| {
            (
                format!("{micros}us"),
                PolicyOverrides {
                    migration_interval: Some(Nanos::from_micros(micros)),
                    ..Default::default()
                },
            )
        })
        .collect();
    let grid = pagerank_sweep("fig15/migration_interval", ctx, axis);
    let base = grid.cells[0].report.runtime.as_nanos() as f64;
    for run in &grid.cells {
        println!(
            "{}",
            row(&[
                run.cell.override_label.clone(),
                format!("{}", run.report.runtime),
                format!("{:.2}", base / run.report.runtime.as_nanos() as f64),
            ])
        );
    }
    grid
}

fn part_b(ctx: &RunContext) -> GridRun {
    header(
        "Fig. 15(b): migration-quota sweep (Page-Rank)",
        "paper Fig. 15b (64 MB/s ~10% below the 128-256 MB/s sweet spot)",
    );
    println!("{}", row(&["mquota".into(), "runtime".into(), "norm. perf".into()]));
    // Time compression packs the paper's promotion demand into ~1000x
    // less simulated time, so the quota knee sits lower; the sweep spans
    // the same two decades around it.
    let quotas = [1u64, 4, 16, 64, 256, 1024, 4096, 8192];
    let axis: Vec<(String, PolicyOverrides)> = quotas
        .into_iter()
        .map(|mib| {
            (
                format!("{mib}MB/s"),
                PolicyOverrides {
                    mquota: Some(Bandwidth::from_mib_per_sec(mib)),
                    ..Default::default()
                },
            )
        })
        .collect();
    let grid = pagerank_sweep("fig15/mquota", ctx, axis);
    // Normalise against the paper's default quota (256 MB/s).
    let base =
        grid.report_where(|c| c.override_label == "256MB/s").runtime.as_nanos() as f64;
    for run in &grid.cells {
        println!(
            "{}",
            row(&[
                run.cell.override_label.clone(),
                format!("{}", run.report.runtime),
                format!("{:.2}", base / run.report.runtime.as_nanos() as f64),
            ])
        );
    }
    grid
}

/// Part (c): feed a Page-Rank-like device-page stream into sketches of
/// varying width and report the tight error bound.
fn part_c(ctx: &RunContext) -> Json {
    header(
        "Fig. 15(c): sketch width vs estimated error bound",
        "paper Fig. 15c (error bound collapses to 0 by W=512K)",
    );
    // A paper-scale stream: the prototype's 16 GB CXL device holds 4 M
    // pages, far above every sketch width — synthesise a zipf-skewed
    // stream over 2 M device pages so counter aliasing is visible.
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let zipf = neomem::workloads::Zipf::new(2_000_000, 0.9);
    let mut rng = SmallRng::seed_from_u64(11);
    let want = ctx.scale.accesses(2_000_000) as usize;
    let stream: Vec<DevicePage> =
        (0..want).map(|_| DevicePage::new(zipf.sample(&mut rng) as u64)).collect();
    println!("{}", row(&["width".into(), "error bound".into()]));
    let shifts = [15u32, 16, 17, 18, 19];
    let bounds = run_indexed(&shifts, ctx.threads, |_, &shift| {
        let mut sketch = CmSketch::new(SketchParams {
            width: 1usize << shift,
            depth: 2,
            seed: 9,
            hot_buffer_entries: 1024,
        })
        .unwrap();
        for &p in &stream {
            sketch.update(p);
        }
        error_bound::exact(sketch.lane_counters(0), 0.25, 2)
    });
    let mut series = Vec::new();
    for (&shift, &bound) in shifts.iter().zip(&bounds) {
        let width = 1usize << shift;
        series.push((format!("{}K", width / 1024), Json::U64(bound as u64)));
        println!("{}", row(&[format!("{}K", width / 1024), format!("{bound}")]));
    }
    Json::Obj(series)
}

fn part_d(ctx: &RunContext) -> GridRun {
    header(
        "Fig. 15(d): sketch width vs end-to-end performance (Page-Rank)",
        "paper Fig. 15d (performance climbs with W, flat after 256K)",
    );
    println!("{}", row(&["width".into(), "runtime".into(), "norm. perf".into()]));
    // The quick footprint has ~4K slow-tier pages; the paper's RSS has
    // millions. To keep the width:footprint ratio of the paper's sweep,
    // the scaled sweep starts below the footprint (256..4K) and ends in
    // the no-aliasing regime.
    let axis: Vec<(String, PolicyOverrides)> = [8u32, 10, 12, 14, 19]
        .into_iter()
        .map(|shift| {
            let width = 1usize << shift;
            let label =
                if width >= 1024 { format!("{}K", width / 1024) } else { format!("{width}") };
            (
                label,
                PolicyOverrides {
                    sketch: Some(SketchParams {
                        width,
                        depth: 2,
                        seed: 9,
                        hot_buffer_entries: 16 * 1024,
                    }),
                    ..Default::default()
                },
            )
        })
        .collect();
    let grid = pagerank_sweep("fig15/sketch_width", ctx, axis);
    let base = grid.cells[0].report.runtime.as_nanos() as f64;
    for run in &grid.cells {
        println!(
            "{}",
            row(&[
                run.cell.override_label.clone(),
                format!("{}", run.report.runtime),
                format!("{:.2}", base / run.report.runtime.as_nanos() as f64),
            ])
        );
    }
    grid
}

/// Runs the figure.
pub fn run(ctx: &RunContext) -> Json {
    let a = part_a(ctx);
    let b = part_b(ctx);
    let c = part_c(ctx);
    let d = part_d(ctx);
    Json::obj([
        ("grids", Json::Arr(vec![a.to_json(), b.to_json(), d.to_json()])),
        ("series", Json::obj([("error_bound_by_width", c)])),
    ])
}
