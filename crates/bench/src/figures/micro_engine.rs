//! `micro_engine` — the batched simulation engine loop, exercised
//! directly (no experiment grid, no worker pool).
//!
//! Three jobs:
//!
//! 1. **Throughput**: run representative (workload, policy) cells
//!    through `Simulation::run` and report wall-clock simulated
//!    accesses per second — the number every engine optimisation PR is
//!    judged against. Wall-clock goes to *stderr*; the JSON payload
//!    carries only simulated (virtual-clock) metrics.
//! 2. **Batch invariance**: re-run one cell at batch size 1 and assert
//!    the simulated results are identical — the engine's batch
//!    contract, double-checked wherever this figure runs.
//! 3. **Allocation probe**: when the hosting binary installed a
//!    counting allocator (see [`crate::alloc_probe`]), measure
//!    steady-state heap allocations of the hot loop by differencing
//!    two first-touch runs whose budgets differ by a known amount —
//!    setup allocations cancel, so the remainder is the per-access
//!    allocation rate, which the batched engine keeps at (amortised)
//!    zero. The `micro_engine` bench target asserts this; here the
//!    numbers are reported on stderr.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use neomem::prelude::*;
use neomem_runner::{report_json, Json};

use crate::alloc_probe;
use crate::{header, row};

use super::RunContext;

/// Cells exercised for throughput: hot-loop-heavy generators against
/// the cheapest and the most involved policy.
const CELLS: &[(WorkloadKind, PolicyKind)] = &[
    (WorkloadKind::Gups, PolicyKind::FirstTouch),
    (WorkloadKind::Gups, PolicyKind::NeoMem),
    (WorkloadKind::Btree, PolicyKind::FirstTouch),
    (WorkloadKind::PageRank, PolicyKind::NeoMem),
];

fn run_cell(
    workload: WorkloadKind,
    policy: PolicyKind,
    accesses: u64,
    batch_size: usize,
) -> RunReport {
    Experiment::builder()
        .workload(workload)
        .policy(policy)
        .rss_pages(2048)
        .accesses(accesses)
        .seed(2024)
        .batch_size(batch_size)
        .build()
        .expect("valid micro_engine cell")
        .run()
}

/// Runs the figure.
pub fn run(ctx: &RunContext) -> Json {
    header(
        "micro_engine: batched engine loop — throughput, batch invariance, allocations",
        "no paper figure; the perf-measurement substrate for engine PRs",
    );
    let budget = ctx.scale.accesses(300_000);

    println!("{}", row(&["workload".into(), "policy".into(), "runtime".into(), "accesses".into()]));
    let mut cells = Vec::new();
    for &(workload, policy) in CELLS {
        let started = Instant::now();
        let report = run_cell(workload, policy, budget, 256);
        let wall = started.elapsed().as_secs_f64();
        eprintln!(
            "[micro_engine] {} / {}: {:.2} M simulated accesses/s of wall time",
            workload.label(),
            policy.label(),
            report.accesses as f64 / wall / 1e6,
        );
        println!(
            "{}",
            row(&[
                workload.label().into(),
                policy.label().into(),
                format!("{}", report.runtime),
                report.accesses.to_string(),
            ])
        );
        cells.push(report_json(&report));
    }

    // Batch invariance: size 1 degrades to the event-at-a-time seed
    // path and must reproduce the batched results exactly.
    let check_budget = ctx.scale.accesses(60_000);
    let batched = run_cell(WorkloadKind::Gups, PolicyKind::NeoMem, check_budget, 256);
    let unbatched = run_cell(WorkloadKind::Gups, PolicyKind::NeoMem, check_budget, 1);
    assert_eq!(
        batched.scalar_metrics(),
        unbatched.scalar_metrics(),
        "batch contract violated: batch=256 diverged from batch=1"
    );
    println!("\nbatch invariance: batch=256 == batch=1 over {check_budget} accesses ✓");

    // Steady-state allocation probe (host-side; stderr only).
    let alloc_stats = steady_state_allocs(ctx);
    match alloc_stats {
        Some((extra_accesses, extra_allocs)) => eprintln!(
            "[micro_engine] steady state: {extra_allocs} heap allocations over {extra_accesses} \
             extra accesses ({:.6} per access)",
            extra_allocs as f64 / extra_accesses as f64,
        ),
        None => eprintln!("[micro_engine] allocation probe inactive (no counting allocator)"),
    }

    Json::obj([
        ("cells", Json::Arr(cells)),
        (
            "series",
            Json::obj([
                ("batch_invariance_accesses", Json::U64(check_budget)),
                (
                    "note",
                    Json::from(
                        "wall-clock throughput and allocation counts printed to stderr; \
                         host-dependent, excluded from JSON",
                    ),
                ),
            ]),
        ),
    ])
}

/// Last probe measurement taken by [`run`], for the bench target's
/// allocation gate (0 accesses = no probe ran). Host-side state only.
static LAST_PROBE_ACCESSES: AtomicU64 = AtomicU64::new(0);
static LAST_PROBE_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// The `(extra_accesses, extra_allocations)` measured by the most
/// recent [`run`] in this process, or `None` when no probe was
/// installed — lets the `micro_engine` bench target gate on the
/// measurement the figure already took instead of re-running it.
pub fn last_steady_state_allocs() -> Option<(u64, u64)> {
    match LAST_PROBE_ACCESSES.load(Ordering::Relaxed) {
        0 => None,
        accesses => Some((accesses, LAST_PROBE_ALLOCS.load(Ordering::Relaxed))),
    }
}

/// Measures steady-state allocations of the first-touch hot loop by
/// differencing an N-access and a 2N-access run: identical setup work
/// cancels, leaving only what the extra N accesses allocated. Returns
/// `(extra_accesses, extra_allocations)`, or `None` without a probe.
fn steady_state_allocs(ctx: &RunContext) -> Option<(u64, u64)> {
    alloc_probe::count()?;
    let n = ctx.scale.accesses(150_000);
    let allocs_of = |accesses: u64| -> u64 {
        let before = alloc_probe::count().expect("probe checked above");
        let report = run_cell(WorkloadKind::Gups, PolicyKind::FirstTouch, accesses, 256);
        let after = alloc_probe::count().expect("probe checked above");
        assert_eq!(report.accesses, accesses);
        after - before
    };
    let short = allocs_of(n);
    let long = allocs_of(2 * n);
    let extra = long.saturating_sub(short);
    LAST_PROBE_ACCESSES.store(n, Ordering::Relaxed);
    LAST_PROBE_ALLOCS.store(extra, Ordering::Relaxed);
    Some((n, extra))
}
