//! Registry — the checked-in scenario corpus, end to end.
//!
//! Not a paper figure: this target exercises the declarative config
//! layer. It discovers the repository's `scenarios/` corpus through
//! [`neomem_runner::Registry`], prints the machine and scenario
//! inventory, then runs **every** scenario in the corpus — each on its
//! declared machine, with its quantum override, under NeoMem — and
//! reports per-scenario virtual-clock metrics.
//!
//! Running the whole corpus is the point: a config file that parses
//! but cannot actually drive the engine (a machine too small for its
//! tenants, a timeline that never converges) fails here, in CI, not in
//! a user's hands. The payload carries only simulated quantities, so
//! the JSON is byte-identical at any `--threads` value.

use neomem::prelude::*;
use neomem::workloads::ScenarioConfig;
use neomem_runner::{ExperimentGrid, Json, Registry};

use super::RunContext;
use crate::{header, row};

/// Per-scenario access budget at quick scale. Small on purpose: the
/// corpus run is a breadth check across ~two dozen scenarios, not a
/// convergence study.
pub const QUICK_BUDGET: u64 = 150_000;

/// The grid one corpus scenario runs on: its declared machine (if
/// any), its interleave-quantum override (if any), the NeoMem policy,
/// and the paper's seed/ratio/cadence conventions.
pub fn corpus_grid(
    config: &ScenarioConfig,
    machine: Option<&MachineDescription>,
    budget: u64,
) -> ExperimentGrid {
    let mut grid = ExperimentGrid::new(format!("registry/{}", config.name))
        .workloads([])
        .scenario(config.name.clone(), config.scenario.clone())
        .policies([PolicyKind::NeoMem])
        .ratios([2])
        .seeds([2024])
        .budgets([budget])
        .time_scale(1000);
    if let Some(quantum) = config.quantum {
        grid = grid.corun_quantum(quantum);
    }
    if let Some(machine) = machine {
        grid = grid.machine(machine.clone());
    }
    grid
}

/// Runs one corpus scenario and distils the cell into the compact
/// virtual-clock metrics object the figure payload carries.
///
/// # Errors
///
/// Returns the grid error when the scenario cannot actually drive the
/// engine (e.g. a machine too small for its tenants).
pub fn run_scenario(
    config: &ScenarioConfig,
    machine: Option<&MachineDescription>,
    ctx: &RunContext,
) -> Result<(Json, neomem_runner::GridRun), neomem::Error> {
    let budget = ctx.scale.accesses(QUICK_BUDGET);
    let run = corpus_grid(config, machine, budget).run_mode(&ctx.grid_mode())?;
    let cell = run.scenario_for(&config.name, PolicyKind::NeoMem, "");
    let corun = cell.corun.as_ref().expect("scenario cells carry corun sections");
    let scenario = cell.scenario.as_ref().expect("scenario cells carry scenario sections");
    let payload = Json::obj([
        (
            "machine",
            match machine {
                Some(m) => Json::from(m.name.as_str()),
                None => Json::from("default"),
            },
        ),
        ("tenants", Json::U64(config.scenario.mix().len() as u64)),
        ("runtime_ns", Json::U64(cell.report.runtime.as_nanos())),
        ("promotions", Json::U64(cell.report.kernel.promotions)),
        ("slow_tier_accesses", Json::U64(cell.report.slow_tier_accesses())),
        (
            "cross_tenant_evictions",
            Json::U64(corun.contention.cross_tenant_evictions),
        ),
        ("epochs", Json::U64(scenario.epochs.len() as u64)),
    ]);
    Ok((payload, run))
}

/// Runs the figure.
pub fn run(ctx: &RunContext) -> Json {
    header(
        "Registry: named machines & scenarios from the checked-in corpus",
        "no paper figure — end-to-end validation of scenarios/",
    );
    let registry = Registry::discover().expect("scenario corpus discoverable");
    let machine_names: Vec<String> = registry.machine_names().map(str::to_string).collect();
    let scenario_names: Vec<String> = registry.scenario_names().map(str::to_string).collect();

    println!(
        "corpus: {} machines + {} scenarios from {}",
        machine_names.len(),
        scenario_names.len(),
        registry.dir().display()
    );
    println!("{}", row(&["machine".into(), "preset".into(), "title".into()]));
    let mut machines = Vec::new();
    for name in &machine_names {
        let machine = registry.machine(name).expect("listed name resolves");
        let preset = format!("{:?}", machine.preset).to_ascii_lowercase();
        println!(
            "{}",
            row(&[
                name.clone(),
                preset.clone(),
                machine.title.clone().unwrap_or_default(),
            ])
        );
        machines.push((
            name.clone(),
            Json::obj([
                ("preset", Json::from(preset.as_str())),
                (
                    "title",
                    machine.title.as_deref().map(Json::from).unwrap_or(Json::Null),
                ),
            ]),
        ));
    }

    header(
        "Corpus run (NeoMem, every scenario on its declared machine)",
        "per-scenario virtual-clock metrics at the breadth budget",
    );
    println!(
        "{}",
        row(&[
            "scenario".into(),
            "machine".into(),
            "runtime".into(),
            "promotions".into(),
            "slow-tier".into(),
            "epochs".into(),
        ])
    );
    let mut series = Vec::new();
    for name in &scenario_names {
        let config = registry.scenario(name).expect("listed name resolves");
        let machine = registry.machine_for(name).expect("machine refs validated at load");
        let (payload, _) = run_scenario(config, machine, ctx)
            .unwrap_or_else(|e| panic!("corpus scenario {name:?} failed to run: {e}"));
        println!(
            "{}",
            row(&[
                name.clone(),
                payload.get("machine").and_then(Json::as_str).unwrap_or("?").to_string(),
                format!("{} ns", payload.get("runtime_ns").and_then(Json::as_u64).unwrap_or(0)),
                format!("{}", payload.get("promotions").and_then(Json::as_u64).unwrap_or(0)),
                format!(
                    "{}",
                    payload.get("slow_tier_accesses").and_then(Json::as_u64).unwrap_or(0)
                ),
                format!("{}", payload.get("epochs").and_then(Json::as_u64).unwrap_or(0)),
            ])
        );
        series.push((name.clone(), payload));
    }

    Json::obj([
        (
            "corpus",
            Json::obj([
                ("entries", Json::U64(registry.len() as u64)),
                ("machines", Json::Obj(machines)),
                (
                    "scenario_names",
                    Json::Arr(scenario_names.iter().map(|n| Json::from(n.as_str())).collect()),
                ),
            ]),
        ),
        ("series", Json::Obj(series)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    const DUEL: &str = "\
schema = 1
kind = scenario
name = duel
quantum = 128

[tenant]
workload = gups
rss_pages = 1024
weight = 3
seed = 1

[tenant]
workload = silo
rss_pages = 1024
seed = 2
";

    fn tiny_ctx(threads: usize) -> RunContext {
        RunContext { threads, ..RunContext::default() }
    }

    #[test]
    fn corpus_cells_are_thread_count_invariant() {
        let config = ScenarioConfig::parse(DUEL).unwrap();
        let machine = MachineDescription::parse(
            "schema = 1\nkind = machine\nname = m\n[memory]\nratio = 4\n",
        )
        .unwrap();
        let run = |threads| {
            let (payload, grid) =
                run_scenario(&config, Some(&machine), &tiny_ctx(threads)).expect("duel runs");
            (payload.render_pretty(), grid.to_json().render_pretty())
        };
        let (payload1, grid1) = run(1);
        let (payload4, grid4) = run(4);
        assert_eq!(payload1, payload4, "scenario payload must not depend on threads");
        assert_eq!(grid1, grid4, "grid JSON must not depend on threads");
    }

    #[test]
    fn quantum_and_machine_flow_into_the_grid() {
        let config = ScenarioConfig::parse(DUEL).unwrap();
        let machine = MachineDescription::parse(
            "schema = 1\nkind = machine\nname = m\n[memory]\nratio = 8\n",
        )
        .unwrap();
        let with =
            run_scenario(&config, Some(&machine), &tiny_ctx(2)).expect("runs").0.render_pretty();
        let without = run_scenario(&config, None, &tiny_ctx(2)).expect("runs").0.render_pretty();
        assert_ne!(with, without, "a 1:8 machine must not reproduce the 1:2 default");
    }
}
