//! The figure/table campaign registry.
//!
//! Every paper figure and table is a [`Figure`]: a callable that prints
//! the human-readable rows (exactly what the `harness = false` bench
//! targets always printed) *and* returns a machine-readable [`Json`]
//! payload. The `neomem-bench` CLI writes those payloads to
//! `target/bench-results/<name>.json`; the bench targets discard them.
//!
//! Payloads contain only simulated (virtual-clock) quantities, so a
//! figure's JSON is byte-identical at any `--threads` value.

pub mod corun;
pub mod differential;
pub mod faults;
pub mod fig03;
pub mod fig04;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod micro_engine;
pub mod micro_sketch;
pub mod micro_system;
pub mod registry;
pub mod scenarios;
pub mod table01;
pub mod table06;

use std::path::PathBuf;

use neomem_runner::{Json, RunMode};

use crate::Scale;

/// Execution context shared by all figures.
#[derive(Debug, Clone, Default)]
pub struct RunContext {
    /// Access-budget scale (`NEOMEM_SCALE`).
    pub scale: Scale,
    /// Worker threads for experiment grids (`0` = all cores).
    pub threads: usize,
    /// Warm-start snapshot directory (`--warm-start DIR`); `None`
    /// runs every grid cold.
    pub warm_dir: Option<PathBuf>,
    /// When set, grids write fresh cell snapshots into `warm_dir`
    /// before running (the `neomem-bench snapshot` command).
    pub write_snapshots: bool,
}

impl RunContext {
    /// Builds a context from the environment: `NEOMEM_SCALE` for the
    /// scale and `NEOMEM_THREADS` for the worker count.
    ///
    /// # Panics
    ///
    /// Panics on unparseable values of either variable.
    pub fn from_env() -> Self {
        let threads = match std::env::var("NEOMEM_THREADS") {
            Err(_) => 0,
            // Set-but-empty counts as unset, matching Scale::parse.
            Ok(value) if value.trim().is_empty() => 0,
            Ok(value) => value.trim().parse().unwrap_or_else(|_| {
                panic!("unrecognised NEOMEM_THREADS value {value:?}: expected a number")
            }),
        };
        Self { scale: Scale::from_env(), threads, ..Self::default() }
    }

    /// The grid execution mode this context implies — what figures
    /// hand to [`neomem_runner::ExperimentGrid::run_mode`].
    pub fn grid_mode(&self) -> RunMode {
        RunMode {
            threads: self.threads,
            warm_dir: self.warm_dir.clone(),
            write_snapshots: self.write_snapshots,
        }
    }
}

/// A registered figure/table regeneration target.
#[derive(Debug, Clone, Copy)]
pub struct Figure {
    /// Short CLI name (`fig11`, `table06`, ...).
    pub name: &'static str,
    /// One-line description shown by `neomem-bench list`.
    pub title: &'static str,
    /// Runs the figure: prints its tables, returns the JSON payload.
    pub run: fn(&RunContext) -> Json,
}

/// Every figure/table, in paper order.
pub const ALL: &[Figure] = &[
    Figure { name: "fig03", title: "Fig. 3: CXL hardware characterisation", run: fig03::run },
    Figure { name: "fig04", title: "Fig. 4: profiling-mechanism evaluation", run: fig04::run },
    Figure { name: "fig11", title: "Fig. 11: end-to-end comparison + §VI-D overhead", run: fig11::run },
    Figure { name: "fig12", title: "Fig. 12: fast:slow memory-ratio sweep", run: fig12::run },
    Figure { name: "fig13", title: "Fig. 13: slow-tier traffic and migrations", run: fig13::run },
    Figure { name: "fig14", title: "Fig. 14: Page-Rank policy deep dive", run: fig14::run },
    Figure { name: "fig15", title: "Fig. 15: parameter sensitivity sweeps", run: fig15::run },
    Figure { name: "fig16", title: "Fig. 16: GUPS convergence after hot-set change", run: fig16::run },
    Figure { name: "fig17", title: "Fig. 17: NeoMem vs Memtis", run: fig17::run },
    Figure { name: "fig18", title: "Fig. 18 + §VI-B: hardware cost estimation", run: fig18::run },
    Figure { name: "table01", title: "Table I: profiling-technique comparison", run: table01::run },
    Figure { name: "table06", title: "Table VI: THP vs base pages on Page-Rank", run: table06::run },
    Figure { name: "corun", title: "Co-run: multi-tenant contention for the fast tier", run: corun::run },
    Figure { name: "scenarios", title: "Scenarios: tenant churn, phased workloads, contention-aware tiering", run: scenarios::run },
    Figure { name: "faults", title: "Faults: graceful degradation under device outages, link brownouts, capacity loss", run: faults::run },
    Figure { name: "registry", title: "Registry: corpus machines & scenarios validated end-to-end", run: registry::run },
    Figure { name: "differential", title: "Differential: staged pipeline vs serial reference over the full corpus", run: differential::run },
    Figure { name: "micro_engine", title: "Engine-loop micro-bench: throughput, batch invariance, allocations", run: micro_engine::run },
    Figure { name: "micro_sketch", title: "Criterion micro-benchmarks: sketch pipeline", run: micro_sketch::run },
    Figure { name: "micro_system", title: "Criterion micro-benchmarks: simulation substrates", run: micro_system::run },
];

/// Looks a figure up by CLI name.
pub fn find(name: &str) -> Option<&'static Figure> {
    ALL.iter().find(|f| f.name == name)
}

/// Runs a figure and wraps its payload in the result envelope
/// (`schema_version`, `name`, `title`, `scale` + the payload keys).
///
/// # Panics
///
/// Panics if the figure returns a non-object payload — a bug in the
/// figure, not a data condition.
pub fn run_figure(figure: &Figure, ctx: &RunContext) -> Json {
    let payload = (figure.run)(ctx);
    let Json::Obj(body) = payload else {
        panic!("figure {} returned a non-object payload", figure.name)
    };
    let mut doc = vec![
        ("schema_version".to_string(), Json::U64(1)),
        ("name".to_string(), Json::from(figure.name)),
        ("title".to_string(), Json::from(figure.title)),
        ("scale".to_string(), Json::from(ctx.scale.name())),
    ];
    doc.extend(body);
    Json::Obj(doc)
}

/// Entry point for the thin `harness = false` bench wrappers: builds a
/// context from the environment, runs the named figure for its printed
/// output and discards the JSON payload.
///
/// # Panics
///
/// Panics on an unknown figure name.
pub fn bench_target_main(name: &str) {
    let figure = find(name).unwrap_or_else(|| panic!("unknown figure {name:?}"));
    let ctx = RunContext::from_env();
    let _ = run_figure(figure, &ctx);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_bench_targets_uniquely() {
        assert_eq!(ALL.len(), 20);
        let mut names: Vec<&str> = ALL.iter().map(|f| f.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate figure names");
        assert!(find("fig11").is_some());
        assert!(find("fig99").is_none());
    }

    #[test]
    fn bench_target_wrappers_resolve_registered_figures() {
        // Every benches/*.rs wrapper calls bench_target_main with a
        // name literal resolved only at runtime; check them statically
        // so a registry rename cannot break `cargo bench` silently.
        let benches_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("benches");
        let mut wrappers = 0;
        for entry in std::fs::read_dir(&benches_dir).expect("benches/ readable") {
            let path = entry.expect("dir entry").path();
            if path.extension().is_none_or(|e| e != "rs") {
                continue;
            }
            let source = std::fs::read_to_string(&path).expect("wrapper readable");
            let name = source
                .split("bench_target_main(\"")
                .nth(1)
                .and_then(|rest| rest.split('"').next())
                .unwrap_or_else(|| panic!("{} does not call bench_target_main", path.display()));
            assert!(
                find(name).is_some(),
                "{} targets unregistered figure {name:?}",
                path.display()
            );
            wrappers += 1;
        }
        assert_eq!(wrappers, ALL.len(), "bench wrapper count != registry size");
    }

    #[test]
    fn envelope_wraps_payload_keys() {
        fn fake(_: &RunContext) -> Json {
            Json::obj([("series", Json::obj([("x", 1u64)]))])
        }
        let figure = Figure { name: "fake", title: "t", run: fake };
        let ctx = RunContext { scale: Scale::Quick, threads: 1, ..RunContext::default() };
        let doc = run_figure(&figure, &ctx);
        assert_eq!(doc.get("schema_version").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("name").and_then(Json::as_str), Some("fake"));
        assert_eq!(doc.get("scale").and_then(Json::as_str), Some("quick"));
        assert!(doc.get("series").is_some());
    }
}
