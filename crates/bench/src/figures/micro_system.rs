//! Criterion micro-benchmarks for the simulation substrates: cache
//! hierarchy, TLB, memory nodes and end-to-end simulator step rate.
//!
//! Timings are wall-clock and host-dependent, so they are printed to
//! stdout but kept out of the deterministic JSON payload.

use criterion::{black_box, Criterion};
use neomem::cache::{CacheHierarchy, HierarchyConfig, Tlb, TlbConfig};
use neomem::mem::{MemoryNode, NodeConfig};
use neomem::prelude::*;
use neomem::types::{AccessKind, CacheLine, VirtPage};
use neomem_runner::Json;

use super::RunContext;

fn bench_cache_access(c: &mut Criterion) {
    let mut hier = CacheHierarchy::new(HierarchyConfig::scaled_small());
    let mut i = 0u64;
    c.bench_function("cache/hierarchy_access", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x9E37_79B9);
            black_box(hier.access(CacheLine::new(i % (1 << 20)), AccessKind::Read))
        })
    });
}

fn bench_tlb_access(c: &mut Criterion) {
    let mut tlb = Tlb::new(TlbConfig::scaled_default());
    let mut i = 0u64;
    c.bench_function("tlb/access", |b| {
        b.iter(|| {
            i = i.wrapping_add(7);
            black_box(tlb.access(VirtPage::new(i % 10_000)))
        })
    });
}

fn bench_memory_node(c: &mut Criterion) {
    let mut node = MemoryNode::new(NodeConfig::cxl_prototype(1024));
    let mut now = Nanos::ZERO;
    c.bench_function("mem/node_service", |b| {
        b.iter(|| {
            now += Nanos::new(500);
            black_box(node.service(AccessKind::Read, now))
        })
    });
}

fn bench_simulation_throughput(c: &mut Criterion) {
    c.bench_function("sim/gups_50k_neomem", |b| {
        b.iter(|| {
            let report = Experiment::builder()
                .workload(WorkloadKind::Gups)
                .policy(PolicyKind::NeoMem)
                .rss_pages(2048)
                .accesses(50_000)
                .build()
                .unwrap()
                .run();
            black_box(report.runtime)
        })
    });
}

/// The benchmark ids, in execution order (part of the JSON payload).
const BENCH_IDS: &[&str] =
    &["cache/hierarchy_access", "tlb/access", "mem/node_service", "sim/gups_50k_neomem"];

/// Runs every micro-benchmark in the group.
pub fn benches(c: &mut Criterion) {
    bench_cache_access(c);
    bench_tlb_access(c);
    bench_memory_node(c);
    bench_simulation_throughput(c);
}

/// Runs the micro-benchmarks; timings go to stdout only.
pub fn run(_ctx: &RunContext) -> Json {
    let mut criterion = Criterion::default().sample_size(10);
    benches(&mut criterion);
    Json::obj([(
        "series",
        Json::obj([
            ("benchmarks", Json::arr(BENCH_IDS.iter().copied())),
            (
                "note",
                Json::from(
                    "wall-clock ns/iter printed to stdout; host-dependent, excluded from JSON",
                ),
            ),
        ]),
    )])
}
