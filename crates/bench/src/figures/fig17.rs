//! Fig. 17 — end-to-end comparison with Memtis.
//!
//! The paper reports a 1.58× geomean speedup for NeoMem, with Memtis
//! close on 603.bwaves but far behind on GUPS due to its sluggish
//! PEBS+histogram hot-set classification.

use neomem::prelude::*;
use neomem_runner::Json;

use super::RunContext;
use crate::{geomean, header, paper_grid, row};

/// Runs the figure.
pub fn run(ctx: &RunContext) -> Json {
    header(
        "Fig. 17: NeoMem vs Memtis (normalised to Memtis, higher is better)",
        "paper Fig. 17 (NeoMem 1.58x geomean; largest gap on GUPS)",
    );
    let grid = paper_grid("fig17/memtis", ctx.scale)
        .workloads(WorkloadKind::FIG11)
        .policies([PolicyKind::NeoMem, PolicyKind::Memtis])
        .run_mode(&ctx.grid_mode())
        .expect("valid fig17 grid");
    println!(
        "{}",
        row(&["benchmark".into(), "NeoMem".into(), "Memtis".into(), "speedup".into()])
    );
    let mut speedups = Vec::new();
    let mut series = Vec::new();
    for wl in WorkloadKind::FIG11 {
        let neomem = grid.report_for(wl, PolicyKind::NeoMem).runtime;
        let memtis = grid.report_for(wl, PolicyKind::Memtis).runtime;
        let speedup = memtis.as_nanos() as f64 / neomem.as_nanos() as f64;
        speedups.push(speedup);
        series.push((wl.label().to_string(), Json::F64(speedup)));
        println!(
            "{}",
            row(&[
                wl.label().into(),
                format!("{neomem}"),
                format!("{memtis}"),
                format!("{speedup:.2}x"),
            ])
        );
    }
    let g = geomean(&speedups);
    println!(
        "{}",
        row(&["GeoMean".into(), String::new(), String::new(), format!("{g:.2}x")])
    );
    Json::obj([
        ("grids", Json::Arr(vec![grid.to_json()])),
        (
            "series",
            Json::obj([
                ("speedup_vs_memtis", Json::Obj(series)),
                ("geomean_speedup", Json::F64(g)),
            ]),
        ),
    ])
}
