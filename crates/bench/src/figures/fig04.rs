//! Fig. 4 — Evaluating different memory-profiling mechanisms.
//!
//! (a) PTE-scan (DAMON) time/space-resolution vs CPU-overhead trade-off,
//!     against NeoProf's fixed low overhead.
//! (b) TLB-access vs LLC-access dispersion on a Redis trace
//!     (Challenge #2: TLB-level profiling misjudges true memory traffic).
//! (c) PEBS slowdown vs sampling interval (Challenge #3).

use std::collections::HashMap;

use neomem::cache::{CacheHierarchy, HierarchyConfig, Tlb, TlbConfig};
use neomem::kernel::{Kernel, KernelConfig};
use neomem::prelude::*;
use neomem::profilers::{DamonConfig, DamonScanner};
use neomem::types::{CacheLine, PageNum, VirtPage};
use neomem::workloads::WorkloadEvent;
use neomem_runner::{run_indexed, Json};

use super::RunContext;
use crate::{header, paper_grid, row, Scale};

/// Part (a): sweep DAMON regions; report per-epoch CPU overhead and
/// spatial resolution. NeoProf's host cost is a handful of MMIO reads.
fn part_a(ctx: &RunContext) -> Json {
    header(
        "Fig. 4(a): PTE-scan (DAMON) trade-off vs NeoProf",
        "paper Fig. 4a (high overhead OR low resolution; NeoProf has neither)",
    );
    let rss: u64 = 32 * 1024;
    println!(
        "{}",
        row(&["profiler".into(), "regions".into(), "pages/region".into(), "scan cost".into()])
    );
    let region_counts = [16usize, 64, 256, 1024, 4096];
    let overheads = run_indexed(&region_counts, ctx.threads, |_, &nr_regions| {
        let mut kernel = Kernel::new(KernelConfig::with_frames(rss / 3, rss));
        for p in 0..rss / 2 {
            kernel.touch_alloc(VirtPage::new(p), Nanos::ZERO).unwrap();
        }
        let mut damon = DamonScanner::new(DamonConfig { nr_regions, ..Default::default() }, rss);
        damon.scan_epoch(&mut kernel).overhead
    });
    let mut series = Vec::new();
    for (&nr_regions, overhead) in region_counts.iter().zip(&overheads) {
        series.push((format!("{nr_regions}"), Json::U64(overhead.as_nanos())));
        println!(
            "{}",
            row(&[
                "DAMON".into(),
                format!("{nr_regions}"),
                format!("{}", rss / nr_regions as u64),
                format!("{overhead}"),
            ])
        );
    }
    // NeoProf: one hot-page readout (threshold + count + pages) per
    // migration interval; resolution is a single 4 KiB page.
    let mmio = neomem::profilers::NeoProfDriverConfig::default();
    let neoprof_cost = mmio.mmio_read_cost * 16;
    println!(
        "{}",
        row(&[
            "NeoProf".into(),
            "-".into(),
            "1 (4KiB)".into(),
            format!("{neoprof_cost}"),
        ])
    );
    Json::obj([
        ("damon_scan_cost_ns", Json::Obj(series)),
        ("neoprof_readout_cost_ns", Json::U64(neoprof_cost.as_nanos())),
    ])
}

/// Part (b): per-page TLB accesses vs LLC misses on Redis.
fn part_b(scale: Scale) -> Json {
    header(
        "Fig. 4(b): TLB-level vs LLC-level access counts (Redis)",
        "paper Fig. 4b (high dispersion, weak correlation)",
    );
    let rss = 4096u64;
    let mut workload = WorkloadKind::Redis.build(rss, 7);
    let mut tlb = Tlb::new(TlbConfig::scaled_small());
    let mut caches = CacheHierarchy::new(HierarchyConfig::scaled_small());
    let mut touches: HashMap<u64, u64> = HashMap::new();
    let mut llc: HashMap<u64, u64> = HashMap::new();
    for _ in 0..scale.accesses(1_000_000) {
        if let WorkloadEvent::Access(a) = workload.next_event() {
            *touches.entry(a.vpage.index()).or_default() += 1;
            tlb.access(a.vpage);
            let line = CacheLine::of_page(PageNum::new(a.vpage.index()), a.line_in_page as u64);
            if caches.access(line, a.kind).level.is_llc_miss() {
                *llc.entry(a.vpage.index()).or_default() += 1;
            }
        }
    }
    // Rank correlation between page-touch counts and LLC-miss counts.
    // Sort pages so the sample below (and the JSON) never depends on
    // the HashMap's per-process iteration order.
    let mut pages: Vec<u64> = touches.keys().copied().collect();
    pages.sort_unstable();
    let xs: Vec<f64> = pages.iter().map(|p| touches[p] as f64).collect();
    let ys: Vec<f64> = pages.iter().map(|p| *llc.get(p).unwrap_or(&0) as f64).collect();
    let r = pearson(&xs, &ys);
    println!("pages observed: {}", pages.len());
    println!("pearson(touches, llc_misses) = {r:.3}  (1.0 would mean TLB profiling suffices)");
    println!("\nsample scatter (page, tlb-level touches, llc misses):");
    println!("{}", row(&["page".into(), "touches".into(), "llc-misses".into()]));
    for p in pages.iter().take(12) {
        println!(
            "{}",
            row(&[
                format!("{p}"),
                format!("{}", touches[p]),
                format!("{}", llc.get(p).unwrap_or(&0)),
            ])
        );
    }
    Json::obj([
        ("pages_observed", Json::U64(pages.len() as u64)),
        ("pearson_touches_vs_llc", Json::F64(r)),
    ])
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}

/// Part (c): PEBS slowdown vs sampling interval on GUPS.
fn part_c(ctx: &RunContext) -> (Json, Json) {
    header(
        "Fig. 4(c): PEBS overhead vs sampling interval",
        "paper Fig. 4c (>50% slowdown near interval 10, negligible at 10000)",
    );
    // Baseline: the same PEBS policy with sampling effectively off, so
    // the sweep isolates pure sampling cost (promotion is disabled in
    // all runs via a tiny quota).
    let sweep: Vec<(String, u64)> = std::iter::once(("baseline".to_string(), u64::MAX / 2))
        .chain([10u64, 100, 1000, 10_000].map(|i| (format!("{i}"), i)))
        .collect();
    let axis: Vec<(String, PolicyOverrides)> = sweep
        .iter()
        .map(|(label, interval)| {
            (
                label.clone(),
                PolicyOverrides {
                    pebs_sample_interval: Some(*interval),
                    mquota: Some(Bandwidth::from_bytes_per_sec(1.0)),
                    ..Default::default()
                },
            )
        })
        .collect();
    let grid = paper_grid("fig04/pebs_interval", ctx.scale)
        .workloads([WorkloadKind::Gups])
        .policies([PolicyKind::Pebs])
        .overrides_axis(axis)
        .budgets([ctx.scale.accesses(300_000)])
        .run_mode(&ctx.grid_mode())
        .expect("valid fig04 grid");
    let baseline = grid.report_where(|c| c.override_label == "baseline");
    println!("{}", row(&["interval".into(), "runtime".into(), "slowdown".into()]));
    let mut series = Vec::new();
    for (label, _) in sweep.iter().skip(1) {
        let report = grid.report_where(|c| &c.override_label == label);
        let slowdown =
            report.runtime.as_nanos() as f64 / baseline.runtime.as_nanos() as f64 - 1.0;
        series.push((label.clone(), Json::F64(slowdown)));
        println!(
            "{}",
            row(&[
                label.clone(),
                format!("{}", report.runtime),
                format!("{:+.1}%", slowdown * 100.0),
            ])
        );
    }
    println!(
        "{}",
        row(&["NeoProf".into(), format!("{}", baseline.runtime), "~+0.0%".into()])
    );
    (grid.to_json(), Json::Obj(series))
}

/// Runs the figure.
pub fn run(ctx: &RunContext) -> Json {
    let damon = part_a(ctx);
    let dispersion = part_b(ctx.scale);
    let (pebs_grid, pebs_slowdown) = part_c(ctx);
    Json::obj([
        ("grids", Json::Arr(vec![pebs_grid])),
        (
            "series",
            Json::obj([
                ("damon", damon),
                ("tlb_dispersion", dispersion),
                ("pebs_slowdown", pebs_slowdown),
            ]),
        ),
    ])
}
