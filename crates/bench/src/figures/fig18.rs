//! Fig. 18 + §VI-B FPGA utilisation — NeoProf hardware cost estimation.
//!
//! FPGA point (W=512K, D=2): 93.8 K ALMs, 1.5 K M20K BRAMs, 0 DSPs.
//! ASIC point (TSMC 22 nm, W=256K, D=2): 5.3 mm², 152.2 mW @ 400 MHz,
//! SRAM ≈ 54 % of area.

use neomem::neoprof::cost;
use neomem::sketch::SketchParams;
use neomem_runner::Json;

use super::RunContext;
use crate::{header, row};

/// Runs the figure (pure cost-model arithmetic; no simulation).
pub fn run(_ctx: &RunContext) -> Json {
    header(
        "§VI-B: FPGA resource utilisation (Agilex-7)",
        "paper: 93.8K ALMs (10%), 1.5K M20K (12%), no DSPs at W=512K, D=2",
    );
    println!("{}", row(&["width".into(), "ALMs".into(), "M20K BRAMs".into(), "DSPs".into()]));
    let mut fpga_rows = Vec::new();
    for shift in [15u32, 16, 17, 18, 19] {
        let params = SketchParams { width: 1 << shift, ..SketchParams::paper_default() };
        let fpga = cost::fpga(&params);
        fpga_rows.push((
            format!("{}K", params.width / 1024),
            Json::obj([
                ("alms", Json::U64(fpga.alms)),
                ("brams", Json::U64(fpga.brams)),
                ("dsps", Json::U64(fpga.dsps)),
            ]),
        ));
        println!(
            "{}",
            row(&[
                format!("{}K", params.width / 1024),
                format!("{:.1}K", fpga.alms as f64 / 1000.0),
                format!("{:.2}K", fpga.brams as f64 / 1000.0),
                format!("{}", fpga.dsps),
            ])
        );
    }

    header(
        "Fig. 18: ASIC synthesis estimate (TSMC 22 nm, 400 MHz, 0.8 V)",
        "paper Fig. 18: 5.3 mm2, 152.2 mW, SRAM ~54% of area at W=256K",
    );
    println!(
        "{}",
        row(&["width".into(), "area mm2".into(), "SRAM share".into(), "power mW".into()])
    );
    let mut asic_rows = Vec::new();
    for shift in [15u32, 16, 17, 18, 19] {
        let params = SketchParams { width: 1 << shift, ..SketchParams::paper_default() };
        let asic = cost::asic(&params);
        asic_rows.push((
            format!("{}K", params.width / 1024),
            Json::obj([
                ("area_mm2", Json::F64(asic.area_mm2)),
                ("sram_area_fraction", Json::F64(asic.sram_area_fraction)),
                ("power_mw", Json::F64(asic.power_mw)),
            ]),
        ));
        println!(
            "{}",
            row(&[
                format!("{}K", params.width / 1024),
                format!("{:.2}", asic.area_mm2),
                format!("{:.0}%", asic.sram_area_fraction * 100.0),
                format!("{:.1}", asic.power_mw),
            ])
        );
    }

    println!("\nSRAM bit budget at the paper's FPGA configuration:");
    let p = SketchParams::paper_default();
    let sram_bits = cost::sram_bits(&p);
    println!("  total SRAM bits: {:.2} Mb", sram_bits as f64 / 1e6);

    Json::obj([(
        "series",
        Json::obj([
            ("fpga", Json::Obj(fpga_rows)),
            ("asic", Json::Obj(asic_rows)),
            ("paper_sram_bits", Json::U64(sram_bits)),
        ]),
    )])
}
