//! Faults — graceful degradation under injected hardware misbehaviour.
//!
//! Not a paper figure: the paper evaluates NeoMem on healthy hardware,
//! while production CXL deployments see device resets, link brownouts
//! and hot-removed capacity. This figure drives the deterministic
//! fault-injection layer ([`neomem::types::FaultPlan`]) across four
//! policies — NeoMem, NeoMem-CA, PEBS-style sampling and first-touch —
//! on the same two-tenant machine:
//!
//! 1. **NeoProf outage sweep**: the profiler device goes dark for a
//!    short or long window (and a rapid flap). NeoMem falls back to
//!    PTE-scan profiling and must re-sync after recovery; policies that
//!    never used the device ride through unchanged.
//! 2. **Link brownout**: slow-tier latency ×4 and bandwidth ÷2 for a
//!    window — how much of the hit does each policy's placement absorb?
//! 3. **Fast-tier hot-remove**: a block of fast frames vanishes
//!    mid-run, forcing attributed demotions through the normal
//!    migration path, and returns later.
//!
//! Every fault edge fires on the virtual clock, so the payload is
//! byte-identical at any `--threads` value and at any
//! `SimConfig::batch_size`, like every other figure. A healthy
//! (no-fault) row runs alongside as the control.

use neomem::prelude::*;
use neomem_runner::{ExperimentGrid, Json};

use super::RunContext;
use crate::{header, row, Scale};

/// The resident + companion mix shared by every fault scenario.
fn fault_mix() -> TenantMix {
    TenantMix::builder()
        .tenant(WorkloadKind::Gups, 2048, 2024)
        .tenant(WorkloadKind::Silo, 2048, 2025)
        .build()
        .expect("valid mix")
}

/// Wraps a fault plan in a steady two-tenant scenario.
fn faulted_scenario(plan: FaultPlan) -> Scenario {
    Scenario::builder(fault_mix()).faults(plan).build().expect("valid fault scenario")
}

/// The fault timelines under test, labelled. Windows sit well inside
/// the quick-scale run (~50 ms of virtual time at the 600 k access
/// budget) so every fault recovers in-run and time-to-recover is
/// finite.
fn fault_timelines() -> Vec<(&'static str, FaultPlan)> {
    let at = Nanos::from_millis(10);
    vec![
        ("healthy", FaultPlan::empty()),
        (
            "outage-short",
            FaultPlan::builder()
                .outage(at, Nanos::from_millis(4))
                .build()
                .expect("valid plan"),
        ),
        (
            "outage-long",
            FaultPlan::builder()
                .outage(at, Nanos::from_millis(12))
                .build()
                .expect("valid plan"),
        ),
        (
            "outage-flap",
            // Three short windows with gaps: the device flaps and the
            // policy re-syncs three times.
            FaultPlan::builder()
                .outage(at, Nanos::from_millis(2))
                .outage(Nanos::from_millis(14), Nanos::from_millis(2))
                .outage(Nanos::from_millis(18), Nanos::from_millis(2))
                .build()
                .expect("valid plan"),
        ),
        (
            "link-brownout",
            FaultPlan::builder()
                .link_degraded(at, Nanos::from_millis(8), 4, 2)
                .build()
                .expect("valid plan"),
        ),
        (
            "capacity-loss",
            FaultPlan::builder()
                .capacity_loss(at, Nanos::from_millis(8), 256)
                .build()
                .expect("valid plan"),
        ),
    ]
}

/// The policy axis: the device-dependent pair plus two baselines that
/// never touch NeoProf (their outage rows are the control for the
/// fallback cost).
const POLICIES: [PolicyKind; 4] = [
    PolicyKind::NeoMem,
    PolicyKind::NeoMemContentionAware,
    PolicyKind::Pebs,
    PolicyKind::FirstTouch,
];

/// The shared grid shell: paper seed/cadence conventions at the co-run
/// budget.
fn fault_grid(scale: Scale) -> ExperimentGrid {
    let mut grid = ExperimentGrid::new("faults/sweep")
        .workloads([])
        .ratios([2])
        .seeds([2024])
        .budgets([scale.accesses(600_000)])
        .time_scale(1000)
        .policies(POLICIES);
    for (label, plan) in fault_timelines() {
        grid = grid.scenario(label, faulted_scenario(plan));
    }
    grid
}

/// Runs the figure.
pub fn run(ctx: &RunContext) -> Json {
    header(
        "Faults: device outages, link degradation, capacity loss",
        "no paper figure — graceful degradation of the paper's policies under injected faults",
    );
    let grid_run = fault_grid(ctx.scale).run_mode(&ctx.grid_mode()).expect("valid fault grid");
    println!(
        "{}",
        row(&[
            "scenario".into(),
            "policy".into(),
            "runtime".into(),
            "faults".into(),
            "degraded".into(),
            "recover".into(),
            "forced-dem".into(),
            "slowdown".into(),
        ])
    );
    let mut series = Vec::new();
    for (label, _) in fault_timelines() {
        let mut by_policy = Vec::new();
        for policy in POLICIES {
            let cell = grid_run.scenario_for(label, policy, "");
            let d = cell.report.degradation;
            let (events, degraded, recover, forced, slowdown) = match d {
                Some(d) => (
                    d.fault_events,
                    d.degraded_time.as_nanos(),
                    d.time_to_recover.map(|t| t.as_nanos()),
                    d.fault_forced_demotions,
                    d.degraded_slowdown_milli,
                ),
                None => (0, 0, None, 0, 0),
            };
            println!(
                "{}",
                row(&[
                    label.to_string(),
                    policy.label().to_string(),
                    format!("{}", cell.report.runtime),
                    format!("{events}"),
                    format!("{}", Nanos::new(degraded)),
                    recover.map(|t| format!("{}", Nanos::new(t))).unwrap_or_else(|| "-".into()),
                    format!("{forced}"),
                    format!("{:.3}x", slowdown as f64 / 1000.0),
                ])
            );
            let mut fields = vec![
                ("runtime_ns".to_string(), Json::U64(cell.report.runtime.as_nanos())),
                ("fault_events".to_string(), Json::U64(events)),
                ("degraded_time_ns".to_string(), Json::U64(degraded)),
                ("fault_forced_demotions".to_string(), Json::U64(forced)),
                ("degraded_slowdown_milli".to_string(), Json::U64(slowdown)),
                (
                    "slow_tier_accesses".to_string(),
                    Json::U64(cell.report.slow_tier_accesses()),
                ),
            ];
            if let Some(t) = recover {
                fields.push(("time_to_recover_ns".to_string(), Json::U64(t)));
            }
            by_policy.push((policy.label().to_string(), Json::Obj(fields)));
        }
        series.push((label.to_string(), Json::Obj(by_policy)));
    }
    Json::obj([
        ("grids", Json::Arr(vec![grid_run.to_json()])),
        ("series", Json::obj([("fault_sweep", Json::Obj(series))])),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timelines_are_valid_and_cover_all_three_classes() {
        let timelines = fault_timelines();
        assert_eq!(timelines[0].1, FaultPlan::empty());
        let classes: Vec<&str> = timelines
            .iter()
            .flat_map(|(_, p)| p.events().iter().map(|e| e.kind.label()))
            .collect();
        for class in ["neoprof-outage", "link-degraded", "capacity-loss"] {
            assert!(classes.contains(&class), "no timeline covers {class}");
        }
        // The flap schedules three distinct outage windows.
        let flap = &timelines.iter().find(|(l, _)| *l == "outage-flap").unwrap().1;
        assert_eq!(flap.len(), 3);
    }

    /// The figure grid at a test-sized budget, through the exact
    /// figure path.
    fn tiny_fault_run(threads: usize) -> neomem_runner::GridRun {
        let mut grid = ExperimentGrid::new("faults/tiny")
            .workloads([])
            .ratios([2])
            .seeds([2024])
            .budgets([120_000])
            .time_scale(1000)
            .policies([PolicyKind::NeoMem, PolicyKind::FirstTouch]);
        for (label, plan) in fault_timelines() {
            grid = grid.scenario(label, faulted_scenario(plan));
        }
        grid.run(threads).expect("valid tiny fault grid")
    }

    #[test]
    fn fault_grid_json_is_thread_invariant_through_the_figure_path() {
        let one = tiny_fault_run(1).to_json().render_pretty();
        let four = tiny_fault_run(4).to_json().render_pretty();
        assert_eq!(one, four);
    }

    #[test]
    fn outage_degrades_gracefully_and_recovers() {
        let run = tiny_fault_run(2);
        // The healthy control carries no degradation section at all —
        // its JSON is the same bytes as before faults existed.
        let healthy = run.scenario_for("healthy", PolicyKind::NeoMem, "");
        assert!(healthy.report.degradation.is_none());
        // The outage rows degrade and recover in-run: finite
        // time-to-recover, non-zero degraded window, and the run still
        // completes its full access budget.
        for label in ["outage-short", "outage-long", "outage-flap"] {
            let cell = run.scenario_for(label, PolicyKind::NeoMem, "");
            let d = cell.report.degradation.expect("fault plan must produce metrics");
            assert!(d.time_to_recover.is_some(), "{label} must recover");
            assert!(d.degraded_time > Nanos::ZERO, "{label}");
            assert_eq!(cell.report.accesses, healthy.report.accesses, "{label}");
        }
        // Capacity loss forces demotions through the migration path.
        let capacity = run.scenario_for("capacity-loss", PolicyKind::NeoMem, "");
        let d = capacity.report.degradation.expect("metrics");
        assert!(d.fault_forced_demotions > 0, "hot-remove must demote resident pages");
    }
}
