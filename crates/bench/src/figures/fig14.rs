//! Fig. 14 — profiling NeoMem on the Page-Rank benchmark.
//!
//! (a) Per-iteration execution time: dynamic threshold vs fixed
//!     θ ∈ {100, 200, 300, 400}.
//! (b) Dynamic-threshold evolution over the run.
//! (c) Read/write bandwidth-utilisation timeline from NeoProf's state
//!     monitor.
//! (d) Access-frequency histogram strips.

use neomem::prelude::*;
use neomem::sim::SimConfig;
use neomem_runner::Json;

use super::RunContext;
use crate::{header, paper_grid, row};

fn dense_sampling(config: &mut SimConfig) {
    config.sample_interval = Nanos::from_micros(500);
}

fn config_name(policy: PolicyKind) -> String {
    match policy {
        PolicyKind::NeoMemFixed(theta) => format!("θ={theta}"),
        _ => "Dynamic".to_string(),
    }
}

/// Runs the figure.
pub fn run(ctx: &RunContext) -> Json {
    header(
        "Fig. 14(a): Page-Rank per-iteration time, dynamic vs fixed thresholds",
        "paper Fig. 14a (dynamic consistently shortest; fixed θ=200 degrades late)",
    );
    // The paper sweeps θ ∈ {100..400} against counts accumulated over a
    // 5 s detection period; with the period compressed to 5 ms the same
    // relative sweep lands at {2..32} (the dynamic policy's θ ranges
    // ~1–16 at this scale).
    let policies = [
        PolicyKind::NeoMem,
        PolicyKind::NeoMemFixed(2),
        PolicyKind::NeoMemFixed(8),
        PolicyKind::NeoMemFixed(16),
        PolicyKind::NeoMemFixed(32),
    ];
    let grid = paper_grid("fig14/thresholds", ctx.scale)
        .workloads([WorkloadKind::PageRank])
        .policies(policies)
        .budgets([ctx.scale.accesses(2_000_000)])
        .configure(dense_sampling)
        .run_mode(&ctx.grid_mode())
        .expect("valid fig14 grid");
    let reports: Vec<(String, &RunReport)> = policies
        .iter()
        .map(|&p| (config_name(p), grid.report_for(WorkloadKind::PageRank, p)))
        .collect();

    let max_iter = reports
        .iter()
        .map(|(_, r)| r.markers.iter().filter(|m| m.label == "iteration").count())
        .min()
        .unwrap_or(0);
    let mut head = vec!["iteration".to_string()];
    head.extend(reports.iter().map(|(n, _)| n.clone()));
    println!("{}", row(&head));
    let mut iteration_series: Vec<(String, Vec<Json>)> =
        reports.iter().map(|(n, _)| (n.clone(), Vec::new())).collect();
    for it in 1..=max_iter.min(16) as u32 {
        let mut cells = vec![format!("{it}")];
        for ((_, r), (_, series)) in reports.iter().zip(&mut iteration_series) {
            match r.marker_duration("iteration", it) {
                Some(d) => {
                    cells.push(format!("{:.3}ms", d.as_millis_f64()));
                    series.push(Json::U64(d.as_nanos()));
                }
                None => cells.push("-".into()),
            }
        }
        println!("{}", row(&cells));
    }
    let mut cells = vec!["total".to_string()];
    for (_, r) in &reports {
        cells.push(format!("{:.2}ms", r.runtime.as_millis_f64()));
    }
    println!("{}", row(&cells));

    let dynamic = reports[0].1;
    header(
        "Fig. 14(b): dynamic hotness-threshold evolution",
        "paper Fig. 14b (threshold rises as the run progresses)",
    );
    print_timeline(dynamic, |p| p.threshold.map(|t| format!("θ={t}")));

    header(
        "Fig. 14(c): slow-tier bandwidth utilisation (read/write)",
        "paper Fig. 14c (high utilisation early, relieved by promotion)",
    );
    print_timeline(dynamic, |p| match (p.read_util, p.write_util) {
        (Some(r), Some(w)) => Some(format!("R={:.1}% W={:.1}%", r * 100.0, w * 100.0)),
        _ => None,
    });

    header(
        "Fig. 14(d): access-frequency histogram strips",
        "paper Fig. 14d (dark bands follow the threshold trace)",
    );
    let mut printed = 0;
    for point in &dynamic.timeline {
        if let Some(hist) = &point.histogram {
            // Render the non-zero-bin occupancy as a density strip.
            let total: u64 = hist.iter().sum::<u64>().max(1);
            let strip: String = hist
                .iter()
                .map(|&n| {
                    let frac = n as f64 / total as f64;
                    match frac {
                        f if f > 0.1 => '#',
                        f if f > 0.01 => '+',
                        f if f > 0.0 => '.',
                        _ => ' ',
                    }
                })
                .collect();
            println!("t={:>9} |{strip}|", format!("{}", point.at));
            printed += 1;
            if printed >= 20 {
                break;
            }
        }
    }
    if printed == 0 {
        println!("(no histogram samples captured — increase run length)");
    }

    Json::obj([
        ("grids", Json::Arr(vec![grid.to_json()])),
        (
            "series",
            Json::obj([
                (
                    "iteration_time_ns",
                    Json::Obj(
                        iteration_series
                            .into_iter()
                            .map(|(name, values)| (name, Json::Arr(values)))
                            .collect(),
                    ),
                ),
                (
                    "total_runtime_ns",
                    Json::Obj(
                        reports
                            .iter()
                            .map(|(name, r)| (name.clone(), Json::U64(r.runtime.as_nanos())))
                            .collect(),
                    ),
                ),
            ]),
        ),
    ])
}

/// Prints every timeline entry where `f` yields a value (up to 24).
fn print_timeline(report: &RunReport, f: impl Fn(&TimelinePoint) -> Option<String>) {
    let mut printed = 0;
    for point in &report.timeline {
        if let Some(s) = f(point) {
            println!("t={:>9}  {s}", format!("{}", point.at));
            printed += 1;
            if printed >= 24 {
                break;
            }
        }
    }
    if printed == 0 {
        println!("(no telemetry captured)");
    }
}
