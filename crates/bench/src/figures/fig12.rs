//! Fig. 12 — performance under different fast:slow memory ratios
//! (1:2, 1:4, 1:8), NeoMem vs PEBS (the second-best solution),
//! normalised to PEBS at each ratio.

use neomem::prelude::*;
use neomem_runner::Json;

use super::RunContext;
use crate::{header, paper_grid, row};

/// Runs the figure.
pub fn run(ctx: &RunContext) -> Json {
    header(
        "Fig. 12: performance with different fast:slow memory ratios",
        "paper Fig. 12 (NeoMem >= PEBS everywhere; gap widens on Page-Rank/Btree as fast shrinks)",
    );
    let grid = paper_grid("fig12/ratios", ctx.scale)
        .workloads(WorkloadKind::FIG11)
        .ratios([2, 4, 8])
        .policies([PolicyKind::NeoMem, PolicyKind::Pebs])
        .run_mode(&ctx.grid_mode())
        .expect("valid fig12 grid");
    println!(
        "{}",
        row(&[
            "benchmark".into(),
            "ratio".into(),
            "NeoMem".into(),
            "PEBS".into(),
            "NeoMem/PEBS".into(),
        ])
    );
    let mut speedups = Vec::new();
    for wl in WorkloadKind::FIG11 {
        for ratio in [2u64, 4, 8] {
            let at = |policy| {
                grid.report_where(|c| c.workload == wl && c.policy == policy && c.ratio == ratio)
                    .runtime
            };
            let neomem = at(PolicyKind::NeoMem);
            let pebs = at(PolicyKind::Pebs);
            let speedup = pebs.as_nanos() as f64 / neomem.as_nanos() as f64;
            speedups.push((format!("{}@1:{ratio}", wl.label()), Json::F64(speedup)));
            println!(
                "{}",
                row(&[
                    wl.label().into(),
                    format!("1:{ratio}"),
                    format!("{neomem}"),
                    format!("{pebs}"),
                    format!("{speedup:.2}"),
                ])
            );
        }
    }
    Json::obj([
        ("grids", Json::Arr(vec![grid.to_json()])),
        ("series", Json::obj([("neomem_over_pebs", Json::Obj(speedups))])),
    ])
}
