//! `differential` — the staged-vs-serial pipeline equivalence gate.
//!
//! Runs the full [`crate::diffcheck`] corpus — every workload kind ×
//! every dispatch-class policy × {single-tenant, co-run, mid-fault,
//! mid-phase} — under both [`neomem::prelude::PipelineMode`]s and
//! requires byte-identical `Debug` reports. This is the release-mode
//! CI face of the engine crate's `differential` integration test: same
//! helper, bigger budget, worker-pool parallelism.
//!
//! The payload carries only case labels and counts (all simulated-side
//! quantities), so the JSON is byte-identical at any `--threads` value
//! — which CI exploits by running the step at `--threads 1` and `4`.

use neomem_runner::Json;

use super::RunContext;
use crate::{diffcheck, header, row};

/// Runs the figure.
///
/// # Panics
///
/// Panics — failing the CI step — when any case's staged run diverges
/// from its serial reference.
pub fn run(ctx: &RunContext) -> Json {
    header(
        "differential: staged pipeline vs serial reference, full corpus",
        "no paper figure; the equivalence gate for the data-oriented engine core",
    );
    let budget = ctx.scale.accesses(12_000);
    let results = diffcheck::run_corpus(ctx.threads, budget);

    println!("{}", row(&["shape".into(), "cases".into(), "identical".into()]));
    let mut shapes = Vec::new();
    for shape in diffcheck::DiffShape::ALL {
        let of_shape: Vec<_> = results
            .iter()
            .filter(|d| d.label.ends_with(shape.label()))
            .collect();
        let identical = of_shape.iter().filter(|d| d.is_identical()).count();
        println!(
            "{}",
            row(&[shape.label().into(), of_shape.len().to_string(), identical.to_string()])
        );
        shapes.push((
            shape.label().to_string(),
            Json::obj([
                ("cases", Json::U64(of_shape.len() as u64)),
                ("identical", Json::U64(identical as u64)),
            ]),
        ));
    }

    for d in &results {
        d.assert_identical();
    }
    println!("\nall {} cases byte-identical across pipelines ✓", results.len());

    Json::obj([
        ("series", Json::Obj(shapes)),
        ("cases", Json::U64(results.len() as u64)),
        ("budget_accesses", Json::U64(budget)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_labels_partition_the_corpus() {
        // The figure groups cases by `ends_with(shape.label())`; that
        // only works if no shape label is a suffix of another.
        let labels: Vec<_> =
            diffcheck::DiffShape::ALL.iter().map(|s| s.label()).collect();
        for a in &labels {
            for b in &labels {
                assert!(a == b || !a.ends_with(b), "{a:?} would match {b:?} rows");
            }
        }
    }
}
