//! Fig. 16 — convergence analysis on GUPS after a hot-set relocation.
//!
//! 90 % of updates hit a fixed hot region; mid-run the region moves.
//! The figure tracks GUPS throughput over time per profiling method:
//! NeoProf converges fastest and reaches the highest steady state.
//!
//! The relocating workload cannot be expressed as a plain grid cell, so
//! this figure drives the runner's worker pool directly.

use neomem::prelude::*;
use neomem::workloads::Gups;
use neomem_runner::{report_json, run_indexed, Json};

use super::RunContext;
use crate::{header, row, Scale};

fn run_with_relocation(policy: PolicyKind, scale: Scale) -> RunReport {
    let rss = 6144u64;
    let accesses = scale.accesses(1_600_000);
    let config = {
        let mut c = SimConfig::quick(rss, 2);
        c.max_accesses = accesses;
        c.sample_interval = Nanos::from_micros(500);
        c
    };
    // Relocate once, halfway through the update phase.
    let workload = Box::new(Gups::new(rss, 2024).with_relocation(accesses / 2));
    let policy =
        neomem::build_policy(policy, &config, 1000, Default::default()).expect("valid policy");
    Simulation::new(config, workload, policy).expect("valid sim").run()
}

/// Runs the figure.
pub fn run(ctx: &RunContext) -> Json {
    header(
        "Fig. 16: GUPS convergence after a hot-set change",
        "paper Fig. 16 (NeoProf: highest plateau, fastest re-convergence)",
    );
    let policies = [
        PolicyKind::NeoMem,
        PolicyKind::PteScan,
        PolicyKind::Tpp,
        PolicyKind::Pebs,
        PolicyKind::FirstTouch,
    ];
    let reports = run_indexed(&policies, ctx.threads, |_, &p| run_with_relocation(p, ctx.scale));

    // Print throughput series in 10 buckets before/after the change.
    println!(
        "{}",
        row(&{
            let mut v = vec!["phase-bucket".to_string()];
            v.extend(reports.iter().map(|r| r.policy.clone()));
            v
        })
    );
    let buckets = 30usize;
    let mut bucket_series: Vec<(String, Vec<Json>)> =
        reports.iter().map(|r| (r.policy.clone(), Vec::new())).collect();
    for b in 0..buckets {
        let mut cells = vec![format!("{b}")];
        for (r, (_, series)) in reports.iter().zip(&mut bucket_series) {
            let move_at = r
                .markers
                .iter()
                .find(|m| m.label == "hot-set-moved")
                .map(|m| m.at)
                .unwrap_or(r.runtime / 2);
            // Bucket timeline around the relocation: 6 before, 6 after.
            let span = r.runtime / buckets as u64;
            let lo = span * b as u64;
            let hi = lo + span;
            let pts: Vec<f64> = r
                .timeline
                .iter()
                .filter(|p| p.at >= lo && p.at < hi)
                .map(|p| p.throughput)
                .collect();
            let mean = if pts.is_empty() { 0.0 } else { pts.iter().sum::<f64>() / pts.len() as f64 };
            let marker = if move_at >= lo && move_at < hi { "*" } else { "" };
            series.push(Json::F64(mean));
            cells.push(format!("{:.1}M{marker}", mean / 1e6));
        }
        println!("{}", row(&cells));
    }
    println!("(* = bucket containing the hot-set change; units: updates/s of simulated time)");

    println!("\nconvergence summary:");
    println!("{}", row(&["policy".into(), "runtime".into(), "promotions".into()]));
    for r in &reports {
        println!(
            "{}",
            row(&[
                r.policy.clone(),
                format!("{}", r.runtime),
                format!("{}", r.kernel.promotions),
            ])
        );
    }
    Json::obj([
        ("runs", Json::Arr(reports.iter().map(report_json).collect())),
        (
            "series",
            Json::obj([(
                "bucket_throughput",
                Json::Obj(
                    bucket_series
                        .into_iter()
                        .map(|(name, values)| (name, Json::Arr(values)))
                        .collect(),
                ),
            )]),
        ),
    ])
}
