//! Criterion micro-benchmarks for the NeoProf sketch pipeline, including
//! the DESIGN.md ablations: hot-bit filter vs none, lazy vs eager clear,
//! histogram error bound vs exact sort.
//!
//! Timings are wall-clock and host-dependent, so they are printed to
//! stdout but kept out of the deterministic JSON payload.

use criterion::{black_box, Criterion};
use neomem::sketch::{
    error_bound, CmSketch, CounterHistogram, FilterKind, HotPageDetector, SketchParams,
};
use neomem::types::DevicePage;
use neomem_runner::Json;

use super::RunContext;

fn params() -> SketchParams {
    SketchParams { width: 1 << 16, depth: 2, seed: 7, hot_buffer_entries: 16 * 1024 }
}

fn bench_sketch_update(c: &mut Criterion) {
    let mut sketch = CmSketch::new(params()).unwrap();
    let mut i = 0u64;
    c.bench_function("sketch/update", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x9E37_79B9);
            black_box(sketch.update(DevicePage::new(i % 100_000)))
        })
    });
}

fn bench_sketch_estimate(c: &mut Criterion) {
    let mut sketch = CmSketch::new(params()).unwrap();
    for i in 0..100_000u64 {
        sketch.update(DevicePage::new(i % 4096));
    }
    let mut i = 0u64;
    c.bench_function("sketch/estimate", |b| {
        b.iter(|| {
            i += 1;
            black_box(sketch.estimate(DevicePage::new(i % 4096)))
        })
    });
}

fn bench_detector_observe(c: &mut Criterion) {
    let mut det = HotPageDetector::new(params()).unwrap();
    det.set_threshold(8);
    let mut i = 0u64;
    c.bench_function("detector/observe", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x9E37_79B9);
            black_box(det.observe(DevicePage::new(i % 50_000)));
            if det.pending_hot_pages() > 8000 {
                det.clear();
                det.set_threshold(8);
            }
        })
    });
}

/// Ablation #1: hot-bit filter (reuses sketch hashes) vs an external
/// Bloom filter with its own hash stage.
fn bench_filter_kinds(c: &mut Criterion) {
    let mut group = c.benchmark_group("detector/filter");
    for (name, kind) in
        [("hot_bits", FilterKind::HotBits), ("external_bloom", FilterKind::ExternalBloom)]
    {
        group.bench_function(name, |b| {
            let mut det = HotPageDetector::with_filter(params(), kind).unwrap();
            det.set_threshold(4);
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(0x9E37_79B9);
                black_box(det.observe(DevicePage::new(i % 20_000)));
                if det.pending_hot_pages() > 8000 {
                    det.clear();
                    det.set_threshold(4);
                }
            })
        });
    }
    group.finish();
}

/// Ablation #4: valid-bit lazy clear vs eager counter zeroing.
fn bench_clear_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketch/clear");
    group.bench_function("lazy_valid_bits", |b| {
        let mut sketch = CmSketch::new(params()).unwrap();
        b.iter(|| {
            sketch.update(DevicePage::new(1));
            sketch.clear();
        })
    });
    group.bench_function("eager_zeroing", |b| {
        let mut sketch = CmSketch::new(params()).unwrap();
        sketch.set_eager_clear(true);
        b.iter(|| {
            sketch.update(DevicePage::new(1));
            sketch.clear();
        })
    });
    group.finish();
}

/// Ablation #2: histogram-based error bound vs exact sorted computation.
fn bench_error_bound(c: &mut Criterion) {
    let mut sketch = CmSketch::new(params()).unwrap();
    for i in 0..500_000u64 {
        sketch.update(DevicePage::new(i % 10_000));
    }
    let mut group = c.benchmark_group("sketch/error_bound");
    group.bench_function("exact_sort", |b| {
        b.iter(|| black_box(error_bound::exact(sketch.lane_counters(0), 0.25, 2)))
    });
    group.bench_function("histogram_64bin", |b| {
        b.iter(|| {
            let hist = CounterHistogram::from_counters(sketch.lane_counters(0));
            black_box(error_bound::from_histogram(&hist, 0.25, 2))
        })
    });
    group.finish();
}

/// The benchmark ids, in execution order (part of the JSON payload).
const BENCH_IDS: &[&str] = &[
    "sketch/update",
    "sketch/estimate",
    "detector/observe",
    "detector/filter/hot_bits",
    "detector/filter/external_bloom",
    "sketch/clear/lazy_valid_bits",
    "sketch/clear/eager_zeroing",
    "sketch/error_bound/exact_sort",
    "sketch/error_bound/histogram_64bin",
];

/// Runs every micro-benchmark in the group.
pub fn benches(c: &mut Criterion) {
    bench_sketch_update(c);
    bench_sketch_estimate(c);
    bench_detector_observe(c);
    bench_filter_kinds(c);
    bench_clear_modes(c);
    bench_error_bound(c);
}

/// Runs the micro-benchmarks; timings go to stdout only.
pub fn run(_ctx: &RunContext) -> Json {
    let mut criterion = Criterion::default().sample_size(20);
    benches(&mut criterion);
    Json::obj([(
        "series",
        Json::obj([
            ("benchmarks", Json::arr(BENCH_IDS.iter().copied())),
            (
                "note",
                Json::from(
                    "wall-clock ns/iter printed to stdout; host-dependent, excluded from JSON",
                ),
            ),
        ]),
    )])
}
