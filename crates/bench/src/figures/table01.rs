//! Table I — qualitative comparison of memory-access profiling
//! techniques.

use neomem_runner::Json;

use super::RunContext;
use crate::header;

/// Runs the table (static content; no simulation).
pub fn run(_ctx: &RunContext) -> Json {
    header("Table I: memory-access profiling techniques comparison", "paper Table I");
    let table = neomem::profilers::comparison_table();
    print!("{table}");
    Json::obj([(
        "series",
        Json::obj([(
            "table_lines",
            Json::arr(table.lines().map(str::to_string)),
        )]),
    )])
}
