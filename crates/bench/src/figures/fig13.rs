//! Fig. 13 — slow-tier (CXL) traffic and promotion/demotion counts per
//! solution (promotions/demotions normalised to PEBS).

use neomem::prelude::*;
use neomem_runner::Json;

use super::RunContext;
use crate::{header, paper_grid, row};

/// Runs the figure.
pub fn run(ctx: &RunContext) -> Json {
    header(
        "Fig. 13: slow-tier traffic and promote/demote counts",
        "paper Fig. 13 (NeoMem lowest slow-tier traffic; TPP fewest migrations; \
         First-touch no migration; PEBS under-promotes)",
    );
    let grid = paper_grid("fig13/traffic", ctx.scale)
        .workloads(WorkloadKind::FIG11)
        .policies(PolicyKind::FIG11)
        .run_mode(&ctx.grid_mode())
        .expect("valid fig13 grid");
    println!(
        "{}",
        row(&[
            "benchmark".into(),
            "policy".into(),
            "slow-tier".into(),
            "promote".into(),
            "demote".into(),
            "ping-pong".into(),
        ])
    );
    for wl in WorkloadKind::FIG11 {
        // Normalise every policy's promotions against PEBS's, which the
        // sequential harness could only do for rows after the PEBS run.
        let pebs_promotions =
            grid.report_for(wl, PolicyKind::Pebs).kernel.promotions.max(1);
        for policy in PolicyKind::FIG11 {
            let report = grid.report_for(wl, policy);
            println!(
                "{}",
                row(&[
                    wl.label().into(),
                    policy.label().into(),
                    format!("{:.2e}", report.slow_tier_accesses() as f64),
                    format!(
                        "{} ({:.1}x)",
                        report.kernel.promotions,
                        report.kernel.promotions as f64 / pebs_promotions as f64
                    ),
                    format!("{}", report.kernel.demotions),
                    format!("{}", report.kernel.ping_pongs),
                ])
            );
        }
        println!();
    }
    Json::obj([("grids", Json::Arr(vec![grid.to_json()]))])
}
