//! Differential checking: the Staged batch pipeline against the
//! Serial reference path.
//!
//! The engine's data-oriented core runs each event batch stage by
//! stage (`PipelineMode::Staged`); the event-at-a-time
//! path (`PipelineMode::Serial`) is kept as the
//! reference semantics. The two must be *bit-identical* — not merely
//! statistically close — because every `BENCH_*.json` baseline was
//! recorded against the serial semantics. This module runs the same
//! experiment under both modes and compares the full `Debug` rendering
//! of the report: every scalar, timeline point, marker, degradation
//! metric and per-tenant section, floats included.
//!
//! Used from two places: the `differential` figure (release-mode CI
//! gate, `neomem-bench differential --threads N`) and the engine
//! crate's own `differential` integration test (debug-mode, runs on
//! every `cargo test`).

use std::fmt::Debug;

use neomem::prelude::*;
use neomem::sketch::SketchParams;

/// Cadence divisor matching the figure-harness convention: Table V's
/// minute-scale daemon intervals shrink so millisecond runs still
/// exercise many policy decisions.
const TIME_SCALE: u64 = 1000;

/// Per-tenant footprint in pages. Small on purpose: the harness is a
/// breadth check over the whole (workload × policy × shape) corpus,
/// not a convergence study.
const RSS_PAGES: u64 = 1024;

const SEED: u64 = 2024;

/// The run shapes the corpus crosses every workload and policy with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffShape {
    /// One tenant, healthy machine — the plain `Simulation` path.
    SingleTenant,
    /// Two tenants contending for the fast tier (`CoRunSimulation`).
    CoRun,
    /// One tenant with a fault plan whose edges land mid-run: an
    /// outage, a link brownout and a capacity loss.
    MidFault,
    /// Two tenants where one switches generator kind and working set
    /// mid-run (a [`PhaseSpec`] schedule).
    MidPhase,
}

impl DiffShape {
    /// Every shape, in corpus order.
    pub const ALL: [DiffShape; 4] =
        [DiffShape::SingleTenant, DiffShape::CoRun, DiffShape::MidFault, DiffShape::MidPhase];

    /// Short label for case names and tables.
    pub fn label(self) -> &'static str {
        match self {
            DiffShape::SingleTenant => "single",
            DiffShape::CoRun => "corun",
            DiffShape::MidFault => "mid-fault",
            DiffShape::MidPhase => "mid-phase",
        }
    }
}

/// The policies the corpus exercises: one per [`PolicyBox`] dispatch
/// class, so every engine fast path *and* the serial fallback for
/// hint-fault policies gets differential coverage.
///
/// [`PolicyBox`]: neomem::policies::PolicyBox
pub fn policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::NeoMem,
        PolicyKind::Pebs,
        PolicyKind::Memtis,
        PolicyKind::PteScan,
        PolicyKind::AutoNuma,
        PolicyKind::Tpp,
        PolicyKind::FirstTouch,
    ]
}

/// One differential case: the serial and staged `Debug` renderings of
/// the same experiment.
#[derive(Debug, Clone)]
pub struct Differential {
    /// `workload/policy/shape` case name.
    pub label: String,
    /// Report rendering under [`PipelineMode::Serial`].
    pub serial: String,
    /// Report rendering under [`PipelineMode::Staged`].
    pub staged: String,
}

impl Differential {
    /// Whether the two pipelines produced byte-identical reports.
    pub fn is_identical(&self) -> bool {
        self.serial == self.staged
    }

    /// Panics with the first divergent region when the renderings
    /// differ. Whole reports run to tens of kilobytes, so the message
    /// excerpts around the first mismatching byte instead of dumping
    /// both sides.
    ///
    /// # Panics
    ///
    /// Panics when the staged pipeline diverged from the serial
    /// reference.
    pub fn assert_identical(&self) {
        if self.is_identical() {
            return;
        }
        let at = self
            .serial
            .bytes()
            .zip(self.staged.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| self.serial.len().min(self.staged.len()));
        fn boundary(s: &str, mut i: usize) -> usize {
            i = i.min(s.len());
            while !s.is_char_boundary(i) {
                i -= 1;
            }
            i
        }
        let window = |s: &str| {
            let view = &s[boundary(s, at.saturating_sub(120))..];
            view[..boundary(view, 280)].to_string()
        };
        panic!(
            "{}: staged pipeline diverged from the serial reference at byte {at}\n\
             serial: …{}…\nstaged: …{}…",
            self.label,
            window(&self.serial),
            window(&self.staged),
        );
    }
}

/// The full corpus: every workload kind (Fig. 11 set plus Redis) ×
/// every dispatch-class policy × every run shape.
pub fn corpus() -> Vec<(WorkloadKind, PolicyKind, DiffShape)> {
    let mut kinds = WorkloadKind::FIG11.to_vec();
    kinds.push(WorkloadKind::Redis);
    let mut cases = Vec::new();
    for &kind in &kinds {
        for &policy in &policies() {
            for shape in DiffShape::ALL {
                cases.push((kind, policy, shape));
            }
        }
    }
    cases
}

/// Runs one corpus case under both pipeline modes.
///
/// `budget` is the access count of a single-tenant run; co-run shapes
/// double it so each tenant still gets the full budget.
///
/// # Panics
///
/// Panics when the case itself cannot be built — a corpus bug, not a
/// differential finding.
pub fn diff_case(
    kind: WorkloadKind,
    policy: PolicyKind,
    shape: DiffShape,
    budget: u64,
) -> Differential {
    diff_case_batched(kind, policy, shape, budget, None)
}

/// [`diff_case`] with an explicit workload batch size. Chunks never
/// cross a batch boundary, so adversarial sizes (1, 2, and the default
/// cap ± 1) steer the staged pipeline into degenerate and off-by-one
/// chunk tails — exactly where SWAR tail handling and admission
/// arithmetic would slip. `None` keeps the config's default.
pub fn diff_case_batched(
    kind: WorkloadKind,
    policy: PolicyKind,
    shape: DiffShape,
    budget: u64,
    batch_size: Option<usize>,
) -> Differential {
    let label = match batch_size {
        Some(b) => format!("{}/{}/{}/batch{}", kind.label(), policy.label(), shape.label(), b),
        None => format!("{}/{}/{}", kind.label(), policy.label(), shape.label()),
    };
    let run = |pipeline| match shape {
        DiffShape::SingleTenant => run_single(kind, policy, pipeline, budget, None, batch_size),
        DiffShape::MidFault => {
            run_single(kind, policy, pipeline, budget, Some(mid_run_faults()), batch_size)
        }
        DiffShape::CoRun => run_corun(kind, policy, pipeline, budget, false, batch_size),
        DiffShape::MidPhase => run_corun(kind, policy, pipeline, budget, true, batch_size),
    };
    Differential { label, serial: run(PipelineMode::Serial), staged: run(PipelineMode::Staged) }
}

/// Runs the whole corpus on the deterministic worker pool and returns
/// the per-case differentials in corpus order.
pub fn run_corpus(threads: usize, budget: u64) -> Vec<Differential> {
    let cases = corpus();
    neomem_runner::run_labeled(
        &cases,
        threads,
        |_, &(kind, policy, shape)| {
            format!("diff/{}/{}/{}", kind.label(), policy.label(), shape.label())
        },
        |_, &(kind, policy, shape)| diff_case(kind, policy, shape, budget),
    )
}

/// Policy construction shared by all shapes. The sketch override keeps
/// NeoMem's NeoProf device at test scale — differential equality only
/// needs both pipelines to see the same device, not the paper-sized
/// one.
fn case_policy(policy: PolicyKind, config: &SimConfig) -> neomem::policies::PolicyBox {
    let overrides = PolicyOverrides { sketch: Some(SketchParams::small()), ..Default::default() };
    build_policy(policy, config, TIME_SCALE, overrides).expect("corpus policy builds")
}

/// A fault plan whose edges all land inside even the smallest corpus
/// run (a `budget`-access run covers ≳400 µs of virtual time).
fn mid_run_faults() -> FaultPlan {
    FaultPlan::builder()
        .outage(Nanos::from_micros(100), Nanos::from_micros(80))
        .link_degraded(Nanos::from_micros(220), Nanos::from_micros(60), 4, 2)
        .capacity_loss(Nanos::from_micros(320), Nanos::from_micros(60), 32)
        .build()
        .expect("valid mid-run plan")
}

fn run_single(
    kind: WorkloadKind,
    policy: PolicyKind,
    pipeline: PipelineMode,
    budget: u64,
    faults: Option<FaultPlan>,
    batch_size: Option<usize>,
) -> String {
    let mut config =
        SimConfig { max_accesses: budget, pipeline, ..SimConfig::quick(RSS_PAGES, 2) };
    if let Some(batch) = batch_size {
        config.batch_size = batch;
    }
    if let Some(plan) = faults {
        config.faults = plan;
    }
    let policy = case_policy(policy, &config);
    let workload = kind.build(RSS_PAGES, SEED);
    let report = Simulation::new(config, workload, policy).expect("corpus case builds").run();
    format!("{report:?}")
}

fn run_corun(
    kind: WorkloadKind,
    policy: PolicyKind,
    pipeline: PipelineMode,
    budget: u64,
    phased: bool,
    batch_size: Option<usize>,
) -> String {
    let mix = TenantMix::builder()
        .tenant(WorkloadKind::Gups, RSS_PAGES, SEED)
        .weighted_tenant(kind, RSS_PAGES, 2, SEED + 1)
        .build()
        .expect("corpus mix builds");
    let mut config = CoRunConfig::quick(&mix, 2);
    config.sim.max_accesses = budget * 2;
    config.sim.pipeline = pipeline;
    if let Some(batch) = batch_size {
        config.sim.batch_size = batch;
    }
    let policy = case_policy(policy, &config.sim);
    let report = if phased {
        // Tenant 1 halves its working set under `kind`, then goes full
        // footprint under GUPS — both a generator and an RSS change.
        let phases = vec![
            PhaseSpec { kind, rss_pages: RSS_PAGES / 2, events: budget / 4 },
            PhaseSpec { kind: WorkloadKind::Gups, rss_pages: RSS_PAGES, events: budget / 4 },
        ];
        let scenario =
            Scenario::builder(mix).phased(1, phases).build().expect("corpus scenario builds");
        CoRunSimulation::with_scenario(config, &scenario, policy)
            .expect("corpus case builds")
            .run()
    } else {
        CoRunSimulation::new(config, &mix, policy).expect("corpus case builds").run()
    };
    format!("{report:?}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_crosses_every_axis() {
        let cases = corpus();
        assert_eq!(cases.len(), 9 * policies().len() * DiffShape::ALL.len());
        assert!(cases.iter().any(|&(k, _, _)| k == WorkloadKind::Redis));
    }

    #[test]
    fn assert_identical_names_the_divergence() {
        let d = Differential {
            label: "gups/NeoMem/single".into(),
            serial: "RunReport { accesses: 100 }".into(),
            staged: "RunReport { accesses: 101 }".into(),
        };
        assert!(!d.is_identical());
        let err = std::panic::catch_unwind(|| d.assert_identical())
            .expect_err("divergent case must panic");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("gups/NeoMem/single"), "{msg}");
        assert!(msg.contains("diverged"), "{msg}");
    }

    #[test]
    fn one_case_runs_identically() {
        diff_case(WorkloadKind::Gups, PolicyKind::FirstTouch, DiffShape::SingleTenant, 4_000)
            .assert_identical();
    }
}
