//! Registry: the checked-in `scenarios/` corpus — inventory plus an
//! end-to-end run of every scenario on its declared machine.

fn main() {
    neomem_bench::figures::bench_target_main("registry");
}
