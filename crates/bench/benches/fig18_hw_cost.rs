//! Fig. 18 + §VI-B — NeoProf hardware cost estimation.
//!
//! Thin wrapper over the shared figure registry; the same figure is
//! available with JSON output via `neomem-bench fig18`.

fn main() {
    neomem_bench::figures::bench_target_main("fig18");
}
