//! `cargo bench --bench differential` — staged-vs-serial equivalence
//! over the full (workload × policy × shape) corpus.

fn main() {
    neomem_bench::figures::bench_target_main("differential");
}
