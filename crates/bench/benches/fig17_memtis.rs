//! Fig. 17 — end-to-end comparison with Memtis.
//!
//! The paper reports a 1.58× geomean speedup for NeoMem, with Memtis
//! close on 603.bwaves but far behind on GUPS due to its sluggish
//! PEBS+histogram hot-set classification.

use neomem::prelude::*;
use neomem_bench::{experiment, geomean, header, row, Scale};

fn main() {
    let scale = Scale::from_env();
    header(
        "Fig. 17: NeoMem vs Memtis (normalised to Memtis, higher is better)",
        "paper Fig. 17 (NeoMem 1.58x geomean; largest gap on GUPS)",
    );
    println!(
        "{}",
        row(&["benchmark".into(), "NeoMem".into(), "Memtis".into(), "speedup".into()])
    );
    let mut speedups = Vec::new();
    for wl in WorkloadKind::FIG11 {
        let run = |policy| {
            experiment(wl, policy, scale).build().expect("valid experiment").run().runtime
        };
        let neomem = run(PolicyKind::NeoMem);
        let memtis = run(PolicyKind::Memtis);
        let speedup = memtis.as_nanos() as f64 / neomem.as_nanos() as f64;
        speedups.push(speedup);
        println!(
            "{}",
            row(&[
                wl.label().into(),
                format!("{neomem}"),
                format!("{memtis}"),
                format!("{speedup:.2}x"),
            ])
        );
    }
    println!(
        "{}",
        row(&["GeoMean".into(), String::new(), String::new(), format!("{:.2}x", geomean(&speedups))])
    );
}
