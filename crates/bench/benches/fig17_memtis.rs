//! Fig. 17 — end-to-end comparison with Memtis.
//!
//! Thin wrapper over the shared figure registry; the same figure is
//! available with JSON output via `neomem-bench fig17`.

fn main() {
    neomem_bench::figures::bench_target_main("fig17");
}
