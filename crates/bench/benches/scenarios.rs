//! Scenarios: dynamic tenancy — churn, phased workloads, and the
//! contention-aware NeoMem variant on the co-run machine.

fn main() {
    neomem_bench::figures::bench_target_main("scenarios");
}
