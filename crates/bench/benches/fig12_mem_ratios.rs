//! Fig. 12 — fast:slow memory-ratio sweep.
//!
//! Thin wrapper over the shared figure registry; the same figure is
//! available with JSON output via `neomem-bench fig12`.

fn main() {
    neomem_bench::figures::bench_target_main("fig12");
}
