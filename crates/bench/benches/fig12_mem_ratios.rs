//! Fig. 12 — performance under different fast:slow memory ratios
//! (1:2, 1:4, 1:8), NeoMem vs PEBS (the second-best solution),
//! normalised to PEBS at each ratio.

use neomem::prelude::*;
use neomem_bench::{experiment, header, row, Scale};

fn main() {
    let scale = Scale::from_env();
    header(
        "Fig. 12: performance with different fast:slow memory ratios",
        "paper Fig. 12 (NeoMem >= PEBS everywhere; gap widens on Page-Rank/Btree as fast shrinks)",
    );
    println!(
        "{}",
        row(&[
            "benchmark".into(),
            "ratio".into(),
            "NeoMem".into(),
            "PEBS".into(),
            "NeoMem/PEBS".into(),
        ])
    );
    for wl in WorkloadKind::FIG11 {
        for ratio in [2u64, 4, 8] {
            let run = |policy| {
                experiment(wl, policy, scale)
                    .ratio(ratio)
                    .build()
                    .expect("valid experiment")
                    .run()
                    .runtime
            };
            let neomem = run(PolicyKind::NeoMem);
            let pebs = run(PolicyKind::Pebs);
            println!(
                "{}",
                row(&[
                    wl.label().into(),
                    format!("1:{ratio}"),
                    format!("{neomem}"),
                    format!("{pebs}"),
                    format!("{:.2}", pebs.as_nanos() as f64 / neomem.as_nanos() as f64),
                ])
            );
        }
    }
}
