//! Faults: graceful degradation under injected device outages, CXL
//! link brownouts and fast-tier capacity loss.

fn main() {
    neomem_bench::figures::bench_target_main("faults");
}
