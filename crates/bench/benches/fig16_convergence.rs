//! Fig. 16 — GUPS convergence after a hot-set relocation.
//!
//! Thin wrapper over the shared figure registry; the same figure is
//! available with JSON output via `neomem-bench fig16`.

fn main() {
    neomem_bench::figures::bench_target_main("fig16");
}
