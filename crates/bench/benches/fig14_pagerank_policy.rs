//! Fig. 14 — Page-Rank policy deep dive.
//!
//! Thin wrapper over the shared figure registry; the same figure is
//! available with JSON output via `neomem-bench fig14`.

fn main() {
    neomem_bench::figures::bench_target_main("fig14");
}
