//! Fig. 11 — end-to-end performance comparison: eight benchmarks × six
//! tiering solutions, normalised to PEBS (higher is better).
//!
//! Also reports the §VI-D NeoProf CPU-overhead measurement (the paper
//! reports a 0.021 % slowdown with profiling enabled but migration
//! disabled).

use neomem::prelude::*;
use neomem_bench::{experiment, geomean, header, row, Scale};

fn main() {
    let scale = Scale::from_env();
    header(
        "Fig. 11: end-to-end performance (normalised to PEBS, higher is better)",
        "paper Fig. 11 (NeoMem achieves 32%-67% geomean speedup)",
    );
    let policies = PolicyKind::FIG11;
    let mut labels: Vec<String> = vec!["benchmark".into()];
    labels.extend(policies.iter().map(|p| p.label().to_string()));
    println!("{}", row(&labels));

    // Per-policy relative performance across benchmarks (vs PEBS).
    let mut rel: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    for wl in WorkloadKind::FIG11 {
        let runtimes: Vec<f64> = policies
            .iter()
            .map(|&p| {
                experiment(wl, p, scale).build().expect("valid experiment").run().runtime.as_nanos()
                    as f64
            })
            .collect();
        let pebs_runtime = runtimes[1]; // PolicyKind::FIG11[1] == Pebs
        let mut cells = vec![wl.label().to_string()];
        for (i, rt) in runtimes.iter().enumerate() {
            let norm = pebs_runtime / rt;
            rel[i].push(norm);
            cells.push(format!("{norm:.2}"));
        }
        println!("{}", row(&cells));
    }
    let mut cells = vec!["Geomean".to_string()];
    let mut geomeans = Vec::new();
    for series in &rel {
        let g = geomean(series);
        geomeans.push(g);
        cells.push(format!("{g:.2}"));
    }
    println!("{}", row(&cells));

    let neomem_g = geomeans[0];
    println!("\nNeoMem geomean speedups over baselines:");
    for (i, p) in policies.iter().enumerate().skip(1) {
        println!("  vs {:<18} {:+.0}%", p.label(), (neomem_g / geomeans[i] - 1.0) * 100.0);
    }

    // §VI-D: NeoProf CPU overhead on GUPS — the host's only cost is the
    // MMIO traffic of the daemon readouts, reported as a share of the
    // run's total time (the paper measures 0.021% by toggling NeoProf).
    header("§VI-D: CPU overhead of NeoMem profiling (GUPS)", "paper reports 0.021% slowdown");
    let profiled = experiment(WorkloadKind::Gups, PolicyKind::NeoMem, scale)
        .accesses(scale.accesses(400_000))
        .build()
        .unwrap()
        .run();
    let share =
        profiled.profiling_overhead.as_nanos() as f64 / profiled.runtime.as_nanos() as f64;
    println!("host MMIO time:          {}", profiled.profiling_overhead);
    println!("share of total runtime:  {:.4}%", share * 100.0);
}
