//! Fig. 11 — end-to-end performance comparison + §VI-D overhead.
//!
//! Thin wrapper over the shared figure registry; the same figure is
//! available with JSON output via `neomem-bench fig11`.

fn main() {
    neomem_bench::figures::bench_target_main("fig11");
}
