//! Co-run — multi-tenant workloads contending for the fast tier.
//!
//! Thin wrapper over the shared figure registry; the same figure is
//! available with JSON output via `neomem-bench corun`.

fn main() {
    neomem_bench::figures::bench_target_main("corun");
}
