//! Table I — qualitative comparison of memory-access profiling
//! techniques.

use neomem_bench::header;

fn main() {
    header("Table I: memory-access profiling techniques comparison", "paper Table I");
    print!("{}", neomem::profilers::comparison_table());
}
