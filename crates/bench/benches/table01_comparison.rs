//! Table I — profiling-technique comparison.
//!
//! Thin wrapper over the shared figure registry; the same figure is
//! available with JSON output via `neomem-bench table01`.

fn main() {
    neomem_bench::figures::bench_target_main("table01");
}
