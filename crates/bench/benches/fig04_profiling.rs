//! Fig. 4 — profiling-mechanism evaluation.
//!
//! Thin wrapper over the shared figure registry; the same figure is
//! available with JSON output via `neomem-bench fig04`.

fn main() {
    neomem_bench::figures::bench_target_main("fig04");
}
