//! Engine-loop micro-benchmark wrapper.
//!
//! Unlike the other thin wrappers, this target installs a counting
//! global allocator before running the shared `micro_engine` figure,
//! turning the figure's steady-state allocation report into a hard
//! assertion: the batched engine's hot path must stay (amortised)
//! allocation-free. Run with `cargo bench --bench micro_engine`.

neomem_bench::counting_allocator!();

fn main() {
    install_probe();
    neomem_bench::figures::bench_target_main("micro_engine");

    // The hard gate: over N extra steady-state accesses the engine may
    // allocate only incidentals that grow sublinearly (timeline vector
    // doublings), bounded here well under one allocation per thousand
    // accesses. A per-access allocation anywhere in step / shootdown
    // draining / event batching blows straight through this. Gates on
    // the measurement the figure just took — no second probe run.
    let (extra_accesses, extra_allocs) =
        neomem_bench::figures::micro_engine::last_steady_state_allocs()
            .expect("probe installed above, so the figure measured it");
    let per_access = extra_allocs as f64 / extra_accesses as f64;
    assert!(
        per_access < 0.001,
        "steady-state hot loop allocates: {extra_allocs} allocations over {extra_accesses} \
         accesses ({per_access:.6}/access)"
    );
    println!(
        "steady-state allocation gate passed: {extra_allocs} allocations over {extra_accesses} \
         accesses"
    );
}
