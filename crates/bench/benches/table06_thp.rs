//! Table VI — Transparent Huge Pages vs base pages on Page-Rank:
//! NeoMem vs TPP, THP on/off.
//!
//! The paper: NeoMem+THP beats NeoMem+base (7.02 GB of huge pages
//! migrated); TPP+THP *regresses* because its time resolution is too low
//! to accumulate per-region heat.

use neomem::policies::{
    HintFaultPolicy, HintFaultPolicyConfig, NeoMemParams, NeoMemPolicy, TieringPolicy,
};
use neomem::prelude::*;
use neomem::profilers::NeoProfDriverConfig;
use neomem::sim::Simulation;
use neomem_bench::{header, row, Scale};

struct Outcome {
    report: RunReport,
    promoted_base: Bytes,
    promoted_huge: Bytes,
}

fn run(policy_kind: &str, thp: bool, scale: Scale) -> Outcome {
    let rss = 8192u64;
    let mut config = SimConfig::quick(rss, 2);
    config.max_accesses = scale.accesses(1_500_000);
    let mem = config.memory_config();
    let slow_base = neomem::types::PageNum::new(mem.fast.capacity_frames);
    let mquota = Bandwidth::from_mib_per_sec(256);

    // Track huge-page bytes through concrete policy types.
    let workload = WorkloadKind::PageRank.build(rss, 2024);
    match policy_kind {
        "NeoMem" => {
            let mut params = NeoMemParams::scaled(1000);
            params.thp = thp;
            params.thp_votes = 2;
            let policy = NeoMemPolicy::new(
                neomem::neoprof::NeoProfConfig::paper_default(slow_base),
                NeoProfDriverConfig::default(),
                params,
            )
            .expect("valid device");
            run_with(config, workload, Box::new(policy), thp)
        }
        "TPP" => {
            let mut cfg = HintFaultPolicyConfig::tpp().scaled(1000);
            cfg.thp = thp;
            let policy = HintFaultPolicy::new(cfg, mquota);
            run_with(config, workload, Box::new(policy), thp)
        }
        other => panic!("unknown policy {other}"),
    }
}

fn run_with(
    config: SimConfig,
    workload: Box<dyn neomem::workloads::Workload>,
    policy: Box<dyn TieringPolicy>,
    _thp: bool,
) -> Outcome {
    let report = Simulation::new(config, workload, policy).expect("valid sim").run();
    let huge = report.promoted_huge_bytes;
    let base = Bytes::new(report.kernel.promoted_bytes.as_u64().saturating_sub(huge.as_u64()));
    Outcome { report, promoted_base: base, promoted_huge: huge }
}

fn main() {
    let scale = Scale::from_env();
    header(
        "Table VI: Transparent Huge Page vs base page on Page-Rank",
        "paper Table VI (NeoMem-THP fastest; TPP barely migrates and regresses with THP)",
    );
    let configs =
        [("NeoMem", true), ("TPP", true), ("NeoMem", false), ("TPP", false)];
    println!(
        "{}",
        row(&[
            "config".into(),
            "build".into(),
            "avg iter".into(),
            "total".into(),
            "base promoted".into(),
            "huge promoted".into(),
        ])
    );
    for (name, thp) in configs {
        let out = run(name, thp, scale);
        let r = &out.report;
        let build = r
            .markers
            .iter()
            .find(|m| m.label == "graph-built")
            .map(|m| format!("{:.2}ms", m.at.as_millis_f64()))
            .unwrap_or_else(|| "-".into());
        let iters: Vec<f64> = (1..=16)
            .filter_map(|i| r.marker_duration("iteration", i))
            .map(|d| d.as_millis_f64())
            .collect();
        let avg_iter = if iters.is_empty() {
            "-".to_string()
        } else {
            format!("{:.2}ms", iters.iter().sum::<f64>() / iters.len() as f64)
        };
        println!(
            "{}",
            row(&[
                format!("{name} {}", if thp { "THP" } else { "Base" }),
                build,
                avg_iter,
                format!("{:.2}ms", r.runtime.as_millis_f64()),
                format!("{}", out.promoted_base),
                format!("{}", out.promoted_huge),
            ])
        );
    }
}
