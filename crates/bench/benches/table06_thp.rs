//! Table VI — THP vs base pages on Page-Rank.
//!
//! Thin wrapper over the shared figure registry; the same figure is
//! available with JSON output via `neomem-bench table06`.

fn main() {
    neomem_bench::figures::bench_target_main("table06");
}
