//! Fig. 13 — slow-tier traffic and migration counts.
//!
//! Thin wrapper over the shared figure registry; the same figure is
//! available with JSON output via `neomem-bench fig13`.

fn main() {
    neomem_bench::figures::bench_target_main("fig13");
}
