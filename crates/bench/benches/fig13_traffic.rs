//! Fig. 13 — slow-tier (CXL) traffic and promotion/demotion counts per
//! solution (promotions/demotions normalised to PEBS).

use neomem::prelude::*;
use neomem_bench::{experiment, header, row, Scale};

fn main() {
    let scale = Scale::from_env();
    header(
        "Fig. 13: slow-tier traffic and promote/demote counts",
        "paper Fig. 13 (NeoMem lowest slow-tier traffic; TPP fewest migrations; \
         First-touch no migration; PEBS under-promotes)",
    );
    println!(
        "{}",
        row(&[
            "benchmark".into(),
            "policy".into(),
            "slow-tier".into(),
            "promote".into(),
            "demote".into(),
            "ping-pong".into(),
        ])
    );
    for wl in WorkloadKind::FIG11 {
        let mut pebs_promotions = 1u64;
        for policy in PolicyKind::FIG11 {
            let report = experiment(wl, policy, scale).build().expect("valid experiment").run();
            if policy == PolicyKind::Pebs {
                pebs_promotions = report.kernel.promotions.max(1);
            }
            println!(
                "{}",
                row(&[
                    wl.label().into(),
                    policy.label().into(),
                    format!("{:.2e}", report.slow_tier_accesses() as f64),
                    format!(
                        "{} ({:.1}x)",
                        report.kernel.promotions,
                        report.kernel.promotions as f64 / pebs_promotions as f64
                    ),
                    format!("{}", report.kernel.demotions),
                    format!("{}", report.kernel.ping_pongs),
                ])
            );
        }
        println!();
    }
}
