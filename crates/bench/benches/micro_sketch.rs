//! Criterion micro-benchmarks for the NeoProf sketch pipeline.
//!
//! Thin wrapper over the shared figure registry; the same figure is
//! available with JSON output via `neomem-bench micro_sketch`.

fn main() {
    neomem_bench::figures::bench_target_main("micro_sketch");
}
