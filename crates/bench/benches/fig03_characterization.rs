//! Fig. 3 — Characterizing CXL-enabled commodity hardware.
//!
//! (a) Idle-latency comparison: host DDR vs ideal-CXL vs FPGA prototype.
//! (b) End-to-end slowdown when the workload is pinned entirely to CXL
//!     memory vs entirely to local DRAM.

use neomem::mem::{MemoryNode, NodeConfig};
use neomem::prelude::*;
use neomem::types::AccessKind;
use neomem_bench::{experiment, geomean, header, row, Scale};

fn latency_probe(config: NodeConfig) -> Nanos {
    let mut node = MemoryNode::new(config);
    // Pointer-chase: dependent accesses far apart in time → unloaded.
    let mut total = Nanos::ZERO;
    for i in 0..1000u64 {
        total += node.service(AccessKind::Read, Nanos::from_micros(i * 10));
    }
    total / 1000
}

fn main() {
    let scale = Scale::from_env();
    header(
        "Fig. 3(a): memory latency characterisation",
        "paper Fig. 3a (118 ns local, 170-250 ns ideal CXL, ~430 ns prototype)",
    );
    let local = latency_probe(NodeConfig::ddr_fast(1024));
    let ideal = latency_probe(NodeConfig::cxl_ideal(1024));
    let proto = latency_probe(NodeConfig::cxl_prototype(1024));
    println!("{}", row(&["tier".into(), "latency".into(), "vs local".into()]));
    for (name, lat) in [("Local Mem.", local), ("CXL (Ideal)", ideal), ("CXL (Proto.)", proto)] {
        println!(
            "{}",
            row(&[
                name.into(),
                format!("{lat}"),
                format!("{:.2}x", lat.as_nanos() as f64 / local.as_nanos() as f64),
            ])
        );
    }

    header(
        "Fig. 3(b): slowdown on CXL-only vs local-only placement",
        "paper Fig. 3b (64%-295% slowdown range)",
    );
    println!("{}", row(&["benchmark".into(), "local".into(), "cxl-only".into(), "slowdown".into()]));
    let mut slowdowns = Vec::new();
    let mut workloads = WorkloadKind::FIG11.to_vec();
    workloads.push(WorkloadKind::Redis);
    for wl in workloads {
        let run = |policy| {
            experiment(wl, policy, scale)
                .accesses(scale.accesses(400_000))
                // Both tiers sized to hold the full footprint so
                // placement, not capacity, is measured.
                .configure(|c| {
                    c.memory = Some(neomem::mem::TieredMemoryConfig::with_frames(
                        c.rss_pages + 64,
                        c.rss_pages + 64,
                    ));
                })
                .build()
                .expect("valid experiment")
                .run()
        };
        let fast = run(PolicyKind::PinnedFast);
        let slow = run(PolicyKind::PinnedSlow);
        let slowdown = slow.runtime.as_nanos() as f64 / fast.runtime.as_nanos() as f64 - 1.0;
        slowdowns.push(1.0 + slowdown);
        println!(
            "{}",
            row(&[
                wl.label().into(),
                format!("{}", fast.runtime),
                format!("{}", slow.runtime),
                format!("{:+.0}%", slowdown * 100.0),
            ])
        );
    }
    println!(
        "{}",
        row(&["Geomean".into(), String::new(), String::new(), format!("{:+.0}%", (geomean(&slowdowns) - 1.0) * 100.0)])
    );
}
