//! Fig. 3 — CXL hardware characterisation.
//!
//! Thin wrapper over the shared figure registry; the same figure is
//! available with JSON output via `neomem-bench fig03`.

fn main() {
    neomem_bench::figures::bench_target_main("fig03");
}
