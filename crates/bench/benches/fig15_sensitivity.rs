//! Fig. 15 — parameter sensitivity sweeps.
//!
//! Thin wrapper over the shared figure registry; the same figure is
//! available with JSON output via `neomem-bench fig15`.

fn main() {
    neomem_bench::figures::bench_target_main("fig15");
}
