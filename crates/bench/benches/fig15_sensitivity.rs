//! Fig. 15 — sensitivity to system and NeoProf parameters.
//!
//! (a) Migration-interval sweep (paper: 10 ms → 5000 ms; shorter wins).
//! (b) Migration-quota sweep (paper: 64 MB/s → 8192 MB/s; sweet spot
//!     around 128–256 MB/s).
//! (c) Sketch-width sweep: estimated error bound (paper: → 0 at 512 K).
//! (d) Sketch-width sweep: end-to-end performance (peaks ≥ 256 K).

use neomem::prelude::*;
use neomem::sketch::{error_bound, CmSketch, SketchParams};
use neomem::types::DevicePage;
use neomem_bench::{experiment, header, row, Scale};

fn main() {
    let scale = Scale::from_env();
    part_a(scale);
    part_b(scale);
    part_c(scale);
    part_d(scale);
}

fn pagerank(scale: Scale, overrides: PolicyOverrides) -> RunReport {
    experiment(WorkloadKind::PageRank, PolicyKind::NeoMem, scale)
        .overrides(overrides)
        .build()
        .expect("valid experiment")
        .run()
}

fn part_a(scale: Scale) {
    header(
        "Fig. 15(a): migration-interval sweep (Page-Rank)",
        "paper Fig. 15a (shorter interval -> better performance)",
    );
    println!("{}", row(&["interval (scaled)".into(), "runtime".into(), "norm. perf".into()]));
    // The paper sweeps 10 ms → 5000 ms on wall-clock; cadences here are
    // time-scaled by 1000, so the sweep covers the same decade span.
    let mut baseline = None;
    for micros in [10u64, 50, 100, 500, 1000, 5000] {
        let report = pagerank(
            scale,
            PolicyOverrides {
                migration_interval: Some(Nanos::from_micros(micros)),
                ..Default::default()
            },
        );
        let base = *baseline.get_or_insert(report.runtime.as_nanos() as f64);
        println!(
            "{}",
            row(&[
                format!("{}us", micros),
                format!("{}", report.runtime),
                format!("{:.2}", base / report.runtime.as_nanos() as f64),
            ])
        );
    }
}

fn part_b(scale: Scale) {
    header(
        "Fig. 15(b): migration-quota sweep (Page-Rank)",
        "paper Fig. 15b (64 MB/s ~10% below the 128-256 MB/s sweet spot)",
    );
    println!("{}", row(&["mquota".into(), "runtime".into(), "norm. perf".into()]));
    // Time compression packs the paper's promotion demand into ~1000x
    // less simulated time, so the quota knee sits lower; the sweep spans
    // the same two decades around it.
    let quotas = [1u64, 4, 16, 64, 256, 1024, 4096, 8192];
    let runs: Vec<RunReport> = quotas
        .iter()
        .map(|&mib| {
            pagerank(
                scale,
                PolicyOverrides {
                    mquota: Some(Bandwidth::from_mib_per_sec(mib)),
                    ..Default::default()
                },
            )
        })
        .collect();
    // Normalise against the paper's default quota (256 MB/s).
    let base = runs[4].runtime.as_nanos() as f64;
    for (mib, report) in quotas.iter().zip(&runs) {
        println!(
            "{}",
            row(&[
                format!("{mib}MB/s"),
                format!("{}", report.runtime),
                format!("{:.2}", base / report.runtime.as_nanos() as f64),
            ])
        );
    }
}

/// Part (c): feed a Page-Rank-like device-page stream into sketches of
/// varying width and report the tight error bound.
fn part_c(scale: Scale) {
    header(
        "Fig. 15(c): sketch width vs estimated error bound",
        "paper Fig. 15c (error bound collapses to 0 by W=512K)",
    );
    // A paper-scale stream: the prototype's 16 GB CXL device holds 4 M
    // pages, far above every sketch width — synthesise a zipf-skewed
    // stream over 2 M device pages so counter aliasing is visible.
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let zipf = neomem::workloads::Zipf::new(2_000_000, 0.9);
    let mut rng = SmallRng::seed_from_u64(11);
    let want = scale.accesses(2_000_000) as usize;
    let stream: Vec<DevicePage> =
        (0..want).map(|_| DevicePage::new(zipf.sample(&mut rng) as u64)).collect();
    println!("{}", row(&["width".into(), "error bound".into()]));
    for shift in [15u32, 16, 17, 18, 19] {
        let width = 1usize << shift;
        let mut sketch = CmSketch::new(SketchParams {
            width,
            depth: 2,
            seed: 9,
            hot_buffer_entries: 1024,
        })
        .unwrap();
        for &p in &stream {
            sketch.update(p);
        }
        let e = error_bound::exact(sketch.lane_counters(0), 0.25, 2);
        println!("{}", row(&[format!("{}K", width / 1024), format!("{e}")]));
    }
}

fn part_d(scale: Scale) {
    header(
        "Fig. 15(d): sketch width vs end-to-end performance (Page-Rank)",
        "paper Fig. 15d (performance climbs with W, flat after 256K)",
    );
    println!("{}", row(&["width".into(), "runtime".into(), "norm. perf".into()]));
    // The quick footprint has ~4K slow-tier pages; the paper's RSS has
    // millions. To keep the width:footprint ratio of the paper's sweep,
    // the scaled sweep starts below the footprint (256..4K) and ends in
    // the no-aliasing regime.
    let mut baseline = None;
    for shift in [8u32, 10, 12, 14, 19] {
        let width = 1usize << shift;
        let report = pagerank(
            scale,
            PolicyOverrides {
                sketch: Some(SketchParams {
                    width,
                    depth: 2,
                    seed: 9,
                    hot_buffer_entries: 16 * 1024,
                }),
                ..Default::default()
            },
        );
        let base = *baseline.get_or_insert(report.runtime.as_nanos() as f64);
        println!(
            "{}",
            row(&[
                if width >= 1024 { format!("{}K", width / 1024) } else { format!("{width}") },
                format!("{}", report.runtime),
                format!("{:.2}", base / report.runtime.as_nanos() as f64),
            ])
        );
    }
}
