//! Custom tiering policies through the public API.
//!
//! The paper exposes NeoMem's knobs through `/sys/kernel/mm/neomem` so
//! "users also have the flexibility to implement their own custom
//! scheduling policies" (§V-B). This example does exactly that: it
//! implements a naive random-promotion policy against the
//! [`neomem_repro::policies::TieringPolicy`] trait and shows how badly
//! it loses to NeoProf-guided promotion on a skewed workload.
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use neomem_repro::kernel::Kernel;
use neomem_repro::policies::{PolicyTelemetry, TieringPolicy};
use neomem_repro::prelude::*;
use neomem_repro::profilers::AccessEvent;
use neomem_repro::sim::Simulation;
use neomem_repro::types::VirtPage;

/// Promotes a random slow-tier page at a fixed interval — no profiling
/// at all. A strawman that shows why hot-page *detection* matters.
struct RandomPromoter {
    next_tick: Nanos,
    interval: Nanos,
    cursor: u64,
    promoted: u64,
}

impl RandomPromoter {
    fn new(interval: Nanos) -> Self {
        Self { next_tick: Nanos::ZERO, interval, cursor: 0, promoted: 0 }
    }
}

impl TieringPolicy for RandomPromoter {
    fn name(&self) -> &'static str {
        "RandomPromoter"
    }

    fn on_access(&mut self, _ev: &AccessEvent, _kernel: &mut Kernel) -> Nanos {
        Nanos::ZERO
    }

    fn maybe_tick(&mut self, kernel: &mut Kernel, now: Nanos) -> Nanos {
        if now < self.next_tick {
            return Nanos::ZERO;
        }
        self.next_tick = now + self.interval;
        // Walk the address space round-robin and promote the first
        // slow-tier page found — "random" enough, deterministic.
        let span = kernel.page_table().span();
        let mut charged = Nanos::ZERO;
        for _ in 0..64 {
            self.cursor = (self.cursor + 97) % span;
            let vpage = VirtPage::new(self.cursor);
            if kernel.tier_of(vpage).map(|t| t.is_slow()).unwrap_or(false) {
                if let Ok(t) = kernel.promote(vpage, now) {
                    charged += t;
                    self.promoted += 1;
                }
                break;
            }
        }
        charged
    }

    fn telemetry(&self) -> PolicyTelemetry {
        PolicyTelemetry::default()
    }
}

fn main() -> Result<(), neomem_repro::Error> {
    let rss = 6144u64;
    let accesses = neomem_repro::example_accesses(400_000);

    // Custom policy through the raw Simulation API.
    let mut config = SimConfig::quick(rss, 2);
    config.max_accesses = accesses;
    let workload = WorkloadKind::Gups.build(rss, 7);
    let custom = Simulation::new(
        config.clone(),
        workload,
        Box::new(RandomPromoter::new(Nanos::from_micros(100))) as Box<dyn TieringPolicy>,
    )?
    .run();

    // NeoMem through the builder, same machine.
    let neomem = Experiment::builder()
        .workload(WorkloadKind::Gups)
        .policy(PolicyKind::NeoMem)
        .rss_pages(rss)
        .accesses(accesses)
        .seed(7)
        .build()?
        .run();

    println!("{:<16} runtime={:>12}  slow-tier={:>9}  promotions={}",
        custom.policy, format!("{}", custom.runtime), custom.slow_tier_accesses(),
        custom.kernel.promotions);
    println!("{:<16} runtime={:>12}  slow-tier={:>9}  promotions={}",
        neomem.policy, format!("{}", neomem.runtime), neomem.slow_tier_accesses(),
        neomem.kernel.promotions);
    println!(
        "\nNeoProf-guided promotion is {:.2}x faster than blind promotion",
        custom.runtime.as_nanos() as f64 / neomem.runtime.as_nanos() as f64
    );
    Ok(())
}
