//! Quickstart: run one workload under the NeoMem tiering policy and
//! print the headline numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use neomem_repro::example_accesses as accesses;
use neomem_repro::prelude::*;

fn main() -> Result<(), neomem_repro::Error> {
    // A GUPS-style workload with a skewed hot set, 24 MiB footprint,
    // 1:2 fast:slow memory, under the full NeoMem stack: NeoProf device
    // profiling + Algorithm 1 dynamic thresholds + quota-limited
    // migration.
    let report = Experiment::builder()
        .workload(WorkloadKind::Gups)
        .policy(PolicyKind::NeoMem)
        .rss_pages(6144)
        .ratio(2)
        .accesses(accesses(400_000))
        .seed(7)
        .build()?
        .run();

    println!("workload:           {}", report.workload);
    println!("policy:             {}", report.policy);
    println!("simulated runtime:  {}", report.runtime);
    println!("accesses:           {}", report.accesses);
    println!("LLC misses:         {}", report.llc_misses);
    println!("slow-tier requests: {}", report.slow_tier_accesses());
    println!("promotions:         {}", report.kernel.promotions);
    println!("demotions:          {}", report.kernel.demotions);
    println!("ping-pong events:   {}", report.kernel.ping_pongs);
    println!("profiling overhead: {}", report.profiling_overhead);

    // Compare against no tiering at all.
    let baseline = Experiment::builder()
        .workload(WorkloadKind::Gups)
        .policy(PolicyKind::FirstTouch)
        .rss_pages(6144)
        .ratio(2)
        .accesses(accesses(400_000))
        .seed(7)
        .build()?
        .run();
    let speedup = baseline.runtime.as_nanos() as f64 / report.runtime.as_nanos() as f64;
    println!("\nspeedup over first-touch NUMA: {speedup:.2}x");
    Ok(())
}
