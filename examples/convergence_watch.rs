//! Watch NeoMem re-converge after the workload's hot set moves — an
//! interactive version of the paper's Fig. 16 experiment.
//!
//! ```sh
//! cargo run --release --example convergence_watch
//! ```

use neomem_repro::prelude::*;
use neomem_repro::sim::Simulation;
use neomem_repro::workloads::Gups;

fn main() -> Result<(), neomem_repro::Error> {
    let rss = 6144u64;
    let accesses = neomem_repro::example_accesses(1_000_000);

    let mut config = SimConfig::quick(rss, 2);
    config.max_accesses = accesses;
    config.sample_interval = Nanos::from_micros(500);

    // GUPS with 90% of updates in a hot region that relocates mid-run.
    // `with_relocation` counts steady-state *updates* while the access
    // budget counts every event (a 4×rss init sweep, then a read and a
    // write per update), so a period of an eighth of the budget lands
    // the move roughly mid-run. The `max` keeps the period legal under
    // absurdly small overrides.
    let workload = Box::new(Gups::new(rss, 2024).with_relocation((accesses / 8).max(1)));
    let policy = neomem_repro::build_policy(
        PolicyKind::NeoMem,
        &config,
        1000,
        PolicyOverrides::default(),
    )?;
    let report = Simulation::new(config, workload, policy)?.run();

    let moved_at = match report.markers.iter().find(|m| m.label == "hot-set-moved") {
        Some(m) => m.at,
        None => {
            eprintln!(
                "access budget {accesses} ended before the hot set relocated — \
                 the move lands at event ~{}; raise NEOMEM_EXAMPLE_ACCESSES",
                4 * rss + accesses / 4
            );
            std::process::exit(2);
        }
    };

    println!("hot set moved at t={moved_at}");
    println!("\nthroughput timeline (× = hot-set move):");
    let peak = report.timeline.iter().map(|p| p.throughput).fold(0.0, f64::max);
    let mut marked = false;
    for point in report.timeline.iter().step_by(4) {
        let bar_len = (point.throughput / peak * 50.0) as usize;
        let marker = if !marked && point.at >= moved_at {
            marked = true;
            " × hot set moved"
        } else {
            ""
        };
        println!(
            "t={:>9} |{:<50}| {:>6.1}M/s{marker}",
            format!("{}", point.at),
            "#".repeat(bar_len),
            point.throughput / 1e6
        );
    }

    println!("\npromotions: {}   ping-pongs: {}", report.kernel.promotions, report.kernel.ping_pongs);
    Ok(())
}
