//! Data-center scenario: the paper's introduction motivates CXL tiering
//! with micro-service workloads. This example runs DeathStarBench under
//! every tiering solution and prints a comparison table, including the
//! migration behaviour behind the numbers.
//!
//! ```sh
//! cargo run --release --example datacenter_tiering
//! ```

use neomem_repro::prelude::*;

fn main() -> Result<(), neomem_repro::Error> {
    let accesses = neomem_repro::example_accesses(600_000);
    let policies = [
        PolicyKind::NeoMem,
        PolicyKind::Pebs,
        PolicyKind::PteScan,
        PolicyKind::AutoNuma,
        PolicyKind::Tpp,
        PolicyKind::FirstTouch,
    ];

    println!(
        "{:<18} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "policy", "runtime", "slow-tier", "promote", "demote", "ping-pong"
    );
    let mut reports = Vec::new();
    for policy in policies {
        let report = Experiment::builder()
            .workload(WorkloadKind::DeathStarBench)
            .policy(policy)
            .rss_pages(6144)
            .ratio(2)
            .accesses(accesses)
            .seed(1)
            .build()?
            .run();
        println!(
            "{:<18} {:>12} {:>12} {:>10} {:>10} {:>10}",
            report.policy,
            format!("{}", report.runtime),
            report.slow_tier_accesses(),
            report.kernel.promotions,
            report.kernel.demotions,
            report.kernel.ping_pongs,
        );
        reports.push(report);
    }

    let neomem = &reports[0];
    println!("\nNeoMem speedups:");
    for other in &reports[1..] {
        println!(
            "  vs {:<18} {:.2}x",
            other.policy,
            other.runtime.as_nanos() as f64 / neomem.runtime.as_nanos() as f64
        );
    }
    Ok(())
}
