//! The one property a property-test shim must never lose: failing
//! assertions actually fail the test. Guards against the runner
//! silently swallowing `prop_assert!` errors.

use proptest::prelude::*;

proptest! {
    #[test]
    #[should_panic(expected = "always false")]
    fn failing_property_panics(x in 0u64..100) {
        prop_assert!(x > 1000, "always false: got {}", x);
    }

    #[test]
    #[should_panic(expected = "left == right")]
    fn failing_eq_panics(x in 1u64..100) {
        prop_assert_eq!(x, 0);
    }

    /// Deterministic generation: the same strategy drawn in two runners
    /// with the same test name yields the same values.
    #[test]
    fn passing_property_sees_many_cases(x in 0u64..1000) {
        prop_assert!(x < 1000);
    }
}

#[test]
fn runner_is_deterministic() {
    use proptest::test_runner::{ProptestConfig, TestRunner};

    let collect = |name: &'static str| {
        let mut seen = Vec::new();
        let mut runner = TestRunner::new(ProptestConfig::with_cases(32), name);
        runner
            .run(&(0u64..1_000_000,), |(v,)| {
                seen.push(v);
                Ok(())
            })
            .unwrap();
        seen
    };
    assert_eq!(collect("alpha"), collect("alpha"), "same name, same stream");
    assert_ne!(collect("alpha"), collect("beta"), "different tests get different streams");
}

#[test]
fn oneof_and_collections_cover_their_domains() {
    use proptest::strategy::Strategy;
    use proptest::test_runner::{ProptestConfig, TestRunner};

    let strategy = proptest::collection::vec(
        prop_oneof![(0u64..10).prop_map(|v| v * 2), (0u64..10).prop_map(|v| v * 2 + 1)],
        1..50,
    );
    let mut evens = 0usize;
    let mut odds = 0usize;
    let mut runner = TestRunner::new(ProptestConfig::with_cases(64), "coverage");
    runner
        .run(&(strategy,), |(v,)| {
            assert!(!v.is_empty() && v.len() < 50);
            evens += v.iter().filter(|x| *x % 2 == 0).count();
            odds += v.iter().filter(|x| *x % 2 == 1).count();
            Ok(())
        })
        .unwrap();
    assert!(evens > 0 && odds > 0, "both oneof branches must be exercised");
}

#[test]
fn shrinking_minimises_integer_failures() {
    use proptest::strategy::Strategy as _;
    use proptest::test_runner::{ProptestConfig, TestRunner};

    // Property "x < 10" fails for any x >= 10; the halving shrinker
    // must walk the failing draw down to exactly 10.
    let mut runner = TestRunner::new(ProptestConfig::with_cases(64), "shrink_int");
    let err = runner
        .run(&(0u64..1_000_000,), |(x,)| {
            if x >= 10 {
                Err(proptest::test_runner::TestCaseError::fail("too big"))
            } else {
                Ok(())
            }
        })
        .expect_err("property must fail");
    assert!(err.contains("shrinks"), "failure must report shrink provenance: {err}");
    assert!(err.contains("(10,)"), "minimal failing input must be 10: {err}");

    // Sanity on the strategy-level candidates: simplest first, strictly
    // smaller, converging toward the range start.
    let candidates = (5u64..100).shrink(&80);
    assert_eq!(candidates, vec![5, 42, 79]);
    assert!((5u64..100).shrink(&5).is_empty(), "the minimum cannot shrink");
}

#[test]
fn shrinking_truncates_vec_failures() {
    use proptest::test_runner::{ProptestConfig, TestRunner};

    // Property "len < 3" — the shrinker must cut a long failing vec
    // down to exactly 3 elements.
    let strategy = proptest::collection::vec(0u64..100, 0..40);
    let mut runner = TestRunner::new(ProptestConfig::with_cases(64), "shrink_vec");
    let err = runner
        .run(&(strategy,), |(v,)| {
            if v.len() >= 3 {
                Err(proptest::test_runner::TestCaseError::fail("too long"))
            } else {
                Ok(())
            }
        })
        .expect_err("property must fail");
    // Three elements, each shrunk toward 0.
    assert!(err.contains("[0, 0, 0]"), "minimal failing vec must be [0, 0, 0]: {err}");
}

#[test]
fn shrinking_disabled_reports_raw_inputs() {
    use proptest::test_runner::{ProptestConfig, TestRunner};

    let config = ProptestConfig { max_shrink_iters: 0, ..ProptestConfig::default() };
    let mut runner = TestRunner::new(config, "shrink_off");
    let err = runner
        .run(&(0u64..1_000_000,), |(x,)| {
            if x >= 10 {
                Err(proptest::test_runner::TestCaseError::fail("too big"))
            } else {
                Ok(())
            }
        })
        .expect_err("property must fail");
    assert!(err.contains("raw generated inputs"), "no shrinking at 0 iters: {err}");
}

#[test]
fn tuple_and_bool_shrinks_substitute_componentwise() {
    use proptest::strategy::Strategy as _;

    let strategy = (0u64..100, proptest::bool::ANY);
    let candidates = strategy.shrink(&(40, true));
    // Component 0 candidates keep the bool; the bool candidate keeps
    // the integer.
    assert!(candidates.contains(&(0, true)));
    assert!(candidates.contains(&(20, true)));
    assert!(candidates.contains(&(40, false)));
    assert!(strategy.shrink(&(0, false)).is_empty());
}
