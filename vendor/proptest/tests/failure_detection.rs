//! The one property a property-test shim must never lose: failing
//! assertions actually fail the test. Guards against the runner
//! silently swallowing `prop_assert!` errors.

use proptest::prelude::*;

proptest! {
    #[test]
    #[should_panic(expected = "always false")]
    fn failing_property_panics(x in 0u64..100) {
        prop_assert!(x > 1000, "always false: got {}", x);
    }

    #[test]
    #[should_panic(expected = "left == right")]
    fn failing_eq_panics(x in 1u64..100) {
        prop_assert_eq!(x, 0);
    }

    /// Deterministic generation: the same strategy drawn in two runners
    /// with the same test name yields the same values.
    #[test]
    fn passing_property_sees_many_cases(x in 0u64..1000) {
        prop_assert!(x < 1000);
    }
}

#[test]
fn runner_is_deterministic() {
    use proptest::test_runner::{ProptestConfig, TestRunner};

    let collect = |name: &'static str| {
        let mut seen = Vec::new();
        let mut runner = TestRunner::new(ProptestConfig::with_cases(32), name);
        runner
            .run(&(0u64..1_000_000,), |(v,)| {
                seen.push(v);
                Ok(())
            })
            .unwrap();
        seen
    };
    assert_eq!(collect("alpha"), collect("alpha"), "same name, same stream");
    assert_ne!(collect("alpha"), collect("beta"), "different tests get different streams");
}

#[test]
fn oneof_and_collections_cover_their_domains() {
    use proptest::strategy::Strategy;
    use proptest::test_runner::{ProptestConfig, TestRunner};

    let strategy = proptest::collection::vec(
        prop_oneof![(0u64..10).prop_map(|v| v * 2), (0u64..10).prop_map(|v| v * 2 + 1)],
        1..50,
    );
    let mut evens = 0usize;
    let mut odds = 0usize;
    let mut runner = TestRunner::new(ProptestConfig::with_cases(64), "coverage");
    runner
        .run(&(strategy,), |(v,)| {
            assert!(!v.is_empty() && v.len() < 50);
            evens += v.iter().filter(|x| *x % 2 == 0).count();
            odds += v.iter().filter(|x| *x % 2 == 1).count();
            Ok(())
        })
        .unwrap();
    assert!(evens > 0 && odds > 0, "both oneof branches must be exercised");
}
