//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A generator of test-case values.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy simply produces one value per draw.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map: f }
    }

    /// Type-erases the strategy so heterogeneous strategies with the
    /// same `Value` can share a container (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies (the engine behind `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! of zero strategies");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
