//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A generator of test-case values.
///
/// Unlike upstream proptest there is no value tree: a strategy
/// produces one value per draw, plus a *naive* shrink step —
/// [`Strategy::shrink`] proposes a few strictly-simpler candidates
/// (halved integers, truncated vecs, component-wise tuple shrinks) the
/// runner retests after a failure, so failing properties report
/// minimal-ish inputs instead of the raw generated case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes simpler candidates for a failing `value`, *simplest
    /// first*. Candidates must be strictly simpler (so repeated
    /// shrinking terminates); an empty vec means the value cannot be
    /// shrunk further. The default cannot shrink.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map: f }
    }

    /// Type-erases the strategy so heterogeneous strategies with the
    /// same `Value` can share a container (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        self.0.shrink(value)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies (the engine behind `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! of zero strategies");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].new_value(rng)
    }
}

/// Candidates for a numeric failing value, simplest first: the range
/// minimum, the midpoint between minimum and value, then value − 1.
/// Halving converges in O(log n) retests; the decrement lets the walk
/// finish at the exact failure boundary once halving overshoots.
fn shrink_toward<T>(lo: T, value: T, half: impl Fn(T, T) -> T, dec: impl Fn(T) -> T) -> Vec<T>
where
    T: PartialOrd + Copy,
{
    if value <= lo {
        return Vec::new();
    }
    let mut out = vec![lo];
    let mid = half(lo, value);
    if mid > lo && mid < value {
        out.push(mid);
    }
    let prev = dec(value);
    if prev > lo && prev < value && Some(&prev) != out.last() {
        out.push(prev);
    }
    out
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(
                    self.start,
                    *value,
                    |lo, v| lo + (v - lo) / 2 as $t,
                    |v| v - 1 as $t,
                )
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(
                    *self.start(),
                    *value,
                    |lo, v| lo + (v - lo) / 2 as $t,
                    |v| v - 1 as $t,
                )
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($(($name:ident, $idx:tt)),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }

            // Shrink one component at a time, keeping the others fixed.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!((A, 0));
impl_tuple_strategy!((A, 0), (B, 1));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));
