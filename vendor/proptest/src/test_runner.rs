//! Case execution: configuration, RNG and the run loop.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// Where failing seeds would be persisted. This shim never persists —
/// runs are deterministic by construction — so the only meaningful
/// value is `None`; the type exists for source compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailurePersistence {
    /// Explicitly off (matches upstream's semantics of `None`).
    Off,
}

/// Runner configuration (subset of upstream `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Ignored: runs are deterministic, nothing needs persisting.
    pub failure_persistence: Option<FailurePersistence>,
    /// Retest budget for the naive shrink loop after a failure (0
    /// disables shrinking and reports the raw generated inputs).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, failure_persistence: None, max_shrink_iters: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases, everything else default.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

/// A test-case failure raised by `prop_assert!` and friends.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }

    /// Upstream-compatible alias of [`TestCaseError::fail`].
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Executes a strategy against a property closure for `config.cases`
/// iterations.
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
    name: &'static str,
}

impl TestRunner {
    /// Creates a runner whose RNG seed is derived from the test name,
    /// making every run of a given test reproducible.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner { config, seed, name }
    }

    /// Runs the property. Returns the first failure — after the naive
    /// shrink loop has minimised it — formatted with the simplest
    /// failing inputs found, or `Ok(())` if every case passes.
    ///
    /// `S::Value: Clone` diverges from upstream (which threads value
    /// trees instead), but every strategy this workspace uses produces
    /// `Clone` values; the bound keeps the passing hot path down to
    /// one clone per case, with shrink candidates materialised only
    /// after a failure.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), String>
    where
        S: Strategy,
        S::Value: std::fmt::Debug + Clone,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::seed_from_u64(self.seed);
        for case in 0..self.config.cases {
            let value = strategy.new_value(&mut rng);
            let backup = value.clone();
            if let Err(mut failure) = test(value) {
                // Naive shrinking: retest progressively simpler
                // candidates; whenever one still fails, adopt it and
                // continue from *its* candidates.
                let mut best = backup;
                let mut queue = strategy.shrink(&best);
                let mut retests = 0u32;
                let mut shrinks = 0u32;
                while retests < self.config.max_shrink_iters && !queue.is_empty() {
                    let candidate = queue.remove(0);
                    retests += 1;
                    if let Err(simpler) = test(candidate.clone()) {
                        failure = simpler;
                        queue = strategy.shrink(&candidate);
                        best = candidate;
                        shrinks += 1;
                    }
                }
                let provenance = if shrinks == 0 {
                    "raw generated inputs".to_string()
                } else {
                    format!("inputs after {shrinks} shrinks ({retests} retests)")
                };
                return Err(format!(
                    "proptest `{}` failed at case {}/{} (derived seed {:#x}):\n{}\n{}: {}",
                    self.name,
                    case + 1,
                    self.config.cases,
                    self.seed,
                    failure,
                    provenance,
                    truncate(&format!("{best:?}"), 2048),
                ));
            }
        }
        Ok(())
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        return s.to_string();
    }
    let mut end = max;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}… ({} bytes total)", &s[..end], s.len())
}
