//! Offline stand-in for the subset of [`proptest` 1.x](https://docs.rs/proptest)
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim via a path dependency. Differences from upstream:
//!
//! * **Naive shrinking.** There is no value tree: after a failure the
//!   runner retests a few strictly-simpler candidates per step (halved
//!   integers toward the range minimum, truncated vecs, component-wise
//!   tuple substitutions, `false` for bools, the first `select`
//!   choice) and greedily adopts whichever still fails, up to
//!   `ProptestConfig::max_shrink_iters` retests. Failing cases report
//!   minimal-ish inputs rather than upstream's true minimum.
//! * **Deterministic by construction.** Every test function derives its
//!   RNG seed from its own name, so runs are reproducible without any
//!   failure-persistence files. `ProptestConfig::failure_persistence`
//!   exists for source compatibility and is ignored.
//! * Only the strategies this repo uses are provided: integer/float
//!   ranges, tuples, `prop::collection::vec`, `prop::bool::ANY`,
//!   `prop::sample::select`, `Just`, `prop_map` and `prop_oneof!`.
//!
//! Swap the path dependency for registry `proptest = "1"` when building
//! with network access; the test sources compile against either.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy type for [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` / `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }

        fn shrink(&self, value: &bool) -> Vec<bool> {
            // `false` is the simpler boolean.
            if *value { vec![false] } else { Vec::new() }
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Admissible length specifications for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec length range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy produced by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }

        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let mut out = Vec::new();
            // Truncations first (they shed the most), shortest first:
            // the minimum length, the first half, then one-shorter.
            let lo = self.size.lo;
            let mut lengths = vec![lo, lo.max(value.len() / 2)];
            if value.len() > lo {
                lengths.push(value.len() - 1);
            }
            lengths.dedup();
            for len in lengths {
                if len < value.len() {
                    out.push(value[..len].to_vec());
                }
            }
            // Then element-wise shrinks: each element's *first* (most
            // aggressive) candidate, substituted in place.
            for (i, element) in value.iter().enumerate() {
                if let Some(candidate) = self.element.shrink(element).into_iter().next() {
                    let mut next = value.clone();
                    next[i] = candidate;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// Sampling strategies over explicit value sets.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy produced by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        choices: Vec<T>,
    }

    /// Picks uniformly from `choices`.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty.
    pub fn select<T: Clone + std::fmt::Debug>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select from empty set");
        Select { choices }
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            self.choices[rng.gen_range(0..self.choices.len())].clone()
        }

        fn shrink(&self, value: &T) -> Vec<T> {
            // Earlier choices are considered simpler (upstream's
            // convention); propose the first choice when the failing
            // value isn't already it. Comparison is by Debug rendering
            // — `select` does not require `PartialEq`.
            let first = &self.choices[0];
            if format!("{first:?}") != format!("{value:?}") {
                vec![first.clone()]
            } else {
                Vec::new()
            }
        }
    }
}

/// Everything a property-test file needs, matching upstream's prelude.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Alias module mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests.
///
/// Supports the upstream forms used in this workspace: an optional
/// leading `#![proptest_config(expr)]`, then any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items with doc
/// comments and attributes.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($p:pat_param in $s:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
            let strategy = ($($s,)+);
            let outcome = runner.run(&strategy, |($($p,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
            if let ::core::result::Result::Err(message) = outcome {
                panic!("{}", message);
            }
        }
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
}

/// Fallible assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fallible equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{}: `{:?}` != `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Fallible inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "{}: both sides are `{:?}`",
            format!($($fmt)+),
            left
        );
    }};
}

/// Uniform choice between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
