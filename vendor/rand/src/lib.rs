//! Offline stand-in for the parts of [`rand` 0.8](https://docs.rs/rand/0.8)
//! this workspace uses: `SmallRng`, [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`]
//! and `gen::<f64>()`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim via a path dependency. The generator is a
//! xoshiro256++ seeded through SplitMix64 — the same construction the
//! real `SmallRng` uses on 64-bit targets — so statistical quality is
//! adequate for the workload generators and profiler-noise models here.
//! It is **not** a cryptographic RNG and makes no stream-compatibility
//! promise with upstream `rand`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// User-facing convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Sample of a [`Standard`]-distributed value (`f64` in `[0, 1)`,
    /// integers over their full range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Deterministically derives a full generator state from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased bounded draw via Lemire-style rejection on 64-bit widening.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling on the top bits; the loop terminates quickly
    // because the acceptance zone is > 50% of the 64-bit space.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = widening_mul(v, bound);
        if lo <= zone {
            return hi;
        }
    }
}

fn widening_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = u128::from(a) * u128::from(b);
    ((wide >> 64) as u64, wide as u64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded_u64(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

/// Non-cryptographic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast generator (xoshiro256++, as in upstream 64-bit
    /// `SmallRng`).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// The raw xoshiro256++ state, for checkpointing. Restoring the
        /// returned words through [`SmallRng::from_state`] resumes the
        /// stream exactly where it left off.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from [`SmallRng::state`] output.
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }

        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0..=3u8);
            assert!(w <= 3);
            let f = rng.gen_range(-0.0..=1.0f64);
            assert!((0.0..=1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = SmallRng::seed_from_u64(99);
        for _ in 0..17 {
            let _ = a.gen_range(0u64..1000);
        }
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "p=0.3 gave {hits}/100000");
    }
}
