//! Offline stand-in for the parts of [`criterion` 0.5](https://docs.rs/criterion)
//! this workspace's micro-benches use: `Criterion`, `bench_function`,
//! `benchmark_group`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim via a path dependency. It times each benchmark
//! with a short calibrated loop and prints a mean ns/iter — adequate
//! for relative comparisons and for keeping the bench targets honest in
//! CI, without upstream's statistical machinery.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark. Tuned for CI friendliness
/// rather than statistical power.
const MEASURE_TARGET: Duration = Duration::from_millis(60);
const WARMUP_TARGET: Duration = Duration::from_millis(15);

/// Top-level benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.criterion.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Handed to each benchmark closure; measures the routine under test.
#[derive(Debug, Default)]
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, running it enough times to fill the
    /// calibration budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_one<F>(id: &str, sample_size: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration: find an iteration count that makes one sample take
    // roughly MEASURE_TARGET / sample_size.
    let mut iters = 1u64;
    let per_sample = MEASURE_TARGET
        .checked_div(sample_size as u32)
        .unwrap_or(Duration::from_millis(1))
        .max(Duration::from_micros(200));
    let warmup_start = Instant::now();
    loop {
        let mut b = Bencher { iters_per_sample: iters, samples: Vec::new() };
        f(&mut b);
        let elapsed = b.samples.last().copied().unwrap_or_default();
        if elapsed >= per_sample || warmup_start.elapsed() >= WARMUP_TARGET {
            if elapsed < per_sample && !elapsed.is_zero() {
                let scale = per_sample.as_nanos() / elapsed.as_nanos().max(1);
                iters = iters.saturating_mul(scale.clamp(1, 1 << 20) as u64).max(1);
            }
            break;
        }
        iters = iters.saturating_mul(2);
    }

    // Measurement.
    let mut b = Bencher { iters_per_sample: iters, samples: Vec::with_capacity(sample_size) };
    for _ in 0..sample_size {
        f(&mut b);
    }
    let total: Duration = b.samples.iter().sum();
    let total_iters = iters.saturating_mul(b.samples.len().max(1) as u64);
    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    let min_ns = b
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / iters.max(1) as f64)
        .fold(f64::INFINITY, f64::min);
    println!("bench {id:<40} {mean_ns:>12.1} ns/iter (min {min_ns:.1}, {sample_size} samples × {iters} iters)");
}

/// Declares a group of benchmark functions (both upstream forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.bench_function("inner", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
